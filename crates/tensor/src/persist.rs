//! Crash-safe persistence primitives shared by every module that writes
//! files meant to be reopened later: tile stores, the serve spill tier,
//! the plan cache, and bench records.
//!
//! The contract is the classic write-temp → `sync_all` → rename →
//! sync-parent-dir sequence: a reader either sees the old file, no file,
//! or the complete new file — never a partial write — because the only
//! step that makes the data visible under the final name is an atomic
//! `rename` of an already-durable temp file. [`AtomicFile`] implements
//! the sequence as a writer handle; [`atomic_write`] is the one-shot
//! convenience over it.
//!
//! Every operation routes through a [`FaultPolicy`]
//! (no-op by default), which is how `tenblock chaos` and the
//! fault-injection tests prove the guarantee instead of assuming it:
//! an injected errno, short write, or simulated crash at any operation
//! must leave the final path either absent or fully valid. After a
//! simulated crash the temp file is deliberately *not* cleaned up — a
//! dead process could not have removed it either, and the recovery path
//! must tolerate stale `*.tmp` litter.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use tenblock_faults::{FaultOp, FaultPolicy, IoOutcome};

/// Temp-file name for `path`: same directory (a rename must not cross
/// filesystems), `.tmp` suffix.
fn tmp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    path.with_file_name(format!("{name}.tmp"))
}

/// A file being written for atomic replacement of `final_path`. Bytes go
/// to a same-directory temp file; [`AtomicFile::commit`] makes them
/// durable and visible in one rename. Dropping without committing
/// removes the temp file (unless a simulated crash says the process died
/// first).
#[derive(Debug)]
pub struct AtomicFile {
    file: Option<std::fs::File>,
    tmp: PathBuf,
    final_path: PathBuf,
    faults: FaultPolicy,
    committed: bool,
}

impl AtomicFile {
    /// Starts an atomic write of `path`, routing every operation through
    /// `faults`.
    pub fn create<P: AsRef<Path>>(path: P, faults: FaultPolicy) -> std::io::Result<AtomicFile> {
        let final_path = path.as_ref().to_path_buf();
        let tmp = tmp_path(&final_path);
        // The only sanctioned direct create: it targets the temp name the
        // rename below makes atomic. lint: allow(atomic-persist)
        let file = std::fs::File::create(&tmp)?;
        Ok(AtomicFile {
            file: Some(file),
            tmp,
            final_path,
            faults,
            committed: false,
        })
    }

    /// The temp path bytes are accumulating in (test hook).
    pub fn tmp_path(&self) -> &Path {
        &self.tmp
    }

    fn file(&mut self) -> &mut std::fs::File {
        // Some until commit/drop by construction: `commit` consumes
        // `self`, so no caller can reach this afterwards. lint: allow(panic-reach)
        self.file.as_mut().expect("AtomicFile used after commit")
    }

    /// Syncs the temp file, renames it over the final path, and syncs
    /// the parent directory so the rename itself is durable.
    pub fn commit(mut self) -> std::io::Result<()> {
        match self.faults.before(FaultOp::Sync, 0) {
            IoOutcome::Err(e) => return Err(e),
            _ => self.file().sync_all()?,
        }
        drop(self.file.take());
        if let IoOutcome::Err(e) = self.faults.before(FaultOp::Rename, 0) {
            return Err(e);
        }
        std::fs::rename(&self.tmp, &self.final_path)?;
        self.committed = true;
        if let IoOutcome::Err(e) = self.faults.before(FaultOp::Sync, 0) {
            return Err(e);
        }
        if let Some(parent) = self.final_path.parent() {
            // Directory sync is what makes the *name* durable; platforms
            // that refuse to open directories just skip it.
            if let Ok(dir) = std::fs::File::open(parent) {
                dir.sync_all()?;
            }
        }
        Ok(())
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.faults.before(FaultOp::Write, buf.len()) {
            IoOutcome::Ok => self.file().write(buf),
            IoOutcome::Short(n) => {
                // A partial write lands (crash: the last bytes the process
                // ever wrote). Report it so `write_all` continues — the
                // next operation decides whether the process is "dead".
                let n = n.max(1).min(buf.len());
                self.file().write_all(&buf[..n])?;
                Ok(n)
            }
            IoOutcome::Corrupt(off) => {
                let mut copy = buf.to_vec();
                if let Some(b) = copy.get_mut(off) {
                    *b ^= 0x40;
                }
                self.file().write_all(&copy)?;
                Ok(buf.len())
            }
            IoOutcome::Err(e) => Err(e),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.file().flush()
    }
}

impl Seek for AtomicFile {
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        self.file().seek(pos)
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if !self.committed && !self.faults.crashed() {
            drop(self.file.take());
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// Atomically replaces `path` with `bytes`: write temp, `sync_all`,
/// rename, sync parent dir. The reader-visible file is never partial.
pub fn atomic_write<P: AsRef<Path>>(path: P, bytes: &[u8]) -> std::io::Result<()> {
    atomic_write_with(path, bytes, &FaultPolicy::none())
}

/// [`atomic_write`] with fault injection.
pub fn atomic_write_with<P: AsRef<Path>>(
    path: P,
    bytes: &[u8],
    faults: &FaultPolicy,
) -> std::io::Result<()> {
    let mut f = AtomicFile::create(path, faults.clone())?;
    f.write_all(bytes)?;
    f.commit()
}

/// A [`Read`] adapter routing every read through a [`FaultPolicy`]: an
/// injected short read behaves like a truncated file (the remainder of
/// the stream reads as EOF), a flipped byte corrupts the delivered
/// buffer, an errno fails the call. Wraps the store readers so `open`
/// and `load_tile` face the same failures a real disk produces.
#[derive(Debug)]
pub struct FaultRead<R> {
    inner: R,
    faults: FaultPolicy,
    truncated: bool,
}

impl<R: Read> FaultRead<R> {
    /// Wraps `inner`.
    pub fn new(inner: R, faults: FaultPolicy) -> Self {
        FaultRead {
            inner,
            faults,
            truncated: false,
        }
    }
}

impl<R: Read> Read for FaultRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.truncated {
            return Ok(0);
        }
        match self.faults.before(FaultOp::Read, buf.len()) {
            IoOutcome::Ok => self.inner.read(buf),
            IoOutcome::Short(n) => {
                // From here on the stream looks truncated, exactly like a
                // file cut off mid-payload.
                self.truncated = true;
                let n = n.min(buf.len());
                self.inner.read(&mut buf[..n])
            }
            IoOutcome::Corrupt(off) => {
                let n = self.inner.read(buf)?;
                if let Some(b) = buf[..n].get_mut(off.min(n.saturating_sub(1))) {
                    *b ^= 0x40;
                }
                Ok(n)
            }
            IoOutcome::Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_faults::{FaultAction, Trigger};

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tenblock_persist_{}_{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_and_never_leaves_tmp() {
        let dir = tmpdir("replace");
        let path = dir.join("data.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer payload");
        assert!(!tmp_path(&path).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_leaves_old_contents_intact() {
        let dir = tmpdir("fail");
        let path = dir.join("data.bin");
        atomic_write(&path, b"old").unwrap();
        let faults = FaultPolicy::new(
            FaultOp::Write,
            FaultAction::Errno(28), // ENOSPC
            Trigger::Nth(0),
            1,
        );
        let err = atomic_write_with(&path, b"new", &faults).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        assert_eq!(std::fs::read(&path).unwrap(), b"old", "old file untouched");
        assert!(!tmp_path(&path).exists(), "temp cleaned up after error");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_leaves_tmp_but_not_the_final_path() {
        let dir = tmpdir("crash");
        let path = dir.join("data.bin");
        let faults = FaultPolicy::new(FaultOp::Write, FaultAction::Crash, Trigger::Nth(0), 9);
        assert!(atomic_write_with(&path, b"doomed payload", &faults).is_err());
        assert!(!path.exists(), "final path never sees a partial file");
        assert!(
            tmp_path(&path).exists(),
            "crash leaves the temp file, like a real dead process"
        );
        // Recovery: a clean rewrite succeeds over the litter.
        atomic_write(&path, b"recovered").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"recovered");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_at_rename_keeps_old_file() {
        let dir = tmpdir("rename");
        let path = dir.join("data.bin");
        atomic_write(&path, b"old").unwrap();
        let faults = FaultPolicy::new(FaultOp::Rename, FaultAction::Crash, Trigger::Nth(0), 2);
        assert!(atomic_write_with(&path, b"new", &faults).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"old");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_read_truncates_like_a_short_file() {
        let data = [7u8; 100];
        let faults = FaultPolicy::new(FaultOp::Read, FaultAction::ShortRead, Trigger::Nth(0), 3);
        let mut r = FaultRead::new(&data[..], faults);
        let mut out = Vec::new();
        let n = r.read_to_end(&mut out).unwrap();
        assert!(n < 100, "short read sticks as EOF");
        assert!(out.iter().all(|&b| b == 7));
    }

    #[test]
    fn fault_read_flips_exactly_one_byte() {
        let data = [0u8; 64];
        let faults = FaultPolicy::new(FaultOp::Read, FaultAction::FlipByte, Trigger::Nth(0), 5);
        let mut r = FaultRead::new(&data[..], faults);
        let mut out = vec![0u8; 64];
        r.read_exact(&mut out).unwrap();
        assert_eq!(out.iter().filter(|&&b| b != 0).count(), 1);
    }
}
