//! # tenblock-tensor
//!
//! Sparse tensor substrate for the `tenblock` project: storage formats,
//! dense factor matrices, I/O, and synthetic data generators.
//!
//! This crate provides everything below the MTTKRP kernels:
//!
//! * [`CooTensor`] — the coordinate format of Figure 1a of the paper,
//! * [`SplattTensor`] — the fiber-compressed SPLATT format of Figure 1b,
//! * [`BcooTensor`] — block-native coordinate storage: a table of nonempty
//!   blocks, each a mini-tensor of byte-wide local offsets (Section V-A as
//!   a data layout rather than an iteration order),
//! * [`DenseMatrix`] / [`StripMatrix`] — row-major factor matrices and the
//!   rank-strip layout used by rank blocking (Section V-B),
//! * [`io`] — FROSTT `.tns` reading/writing,
//! * [`gen`] — the synthetic Poisson / clustered / uniform generators used to
//!   stand in for the paper's data sets (Table II),
//! * [`stats`] — data-set statistics (dimensions, nonzeros, fibers, sparsity).
//!
//! All tensors in this crate are 3-mode, matching the paper's experimental
//! focus ("we focus our optimization efforts on the SPLATT format and 3D
//! data"). Coordinates are stored as `u32` ([`Idx`]), values as `f64`.

// Index-based loops are the clearer idiom for the numeric code in this
// crate (triangular solves, coordinate walks); silence the style lint.
#![allow(clippy::needless_range_loop)]

pub mod bcoo;
pub mod coo;
pub mod csf;
pub mod dense;
pub mod gen;
pub mod io;
pub mod io_bin;
pub mod nd;
pub mod persist;
pub mod reorder;
pub mod source;
pub mod splatt;
pub mod stats;
pub mod tile_store;
pub mod validate;

pub use bcoo::BcooTensor;
pub use coo::{CooTensor, Entry, TensorError};
pub use csf::CsfTensor;
pub use dense::{DenseMatrix, StripMatrix};
pub use nd::NdCooTensor;
pub use persist::{atomic_write, atomic_write_with, AtomicFile};
pub use source::{BcooSource, CooSource, SourceTile, TensorSource};
pub use splatt::SplattTensor;
pub use stats::TensorStats;
pub use tile_store::{TileMeta, TileStore};

/// Coordinate index type. `u32` comfortably covers every data set in the
/// paper (largest mode length: 4.8M for Amazon) while halving index traffic
/// relative to `usize`.
pub type Idx = u32;

/// Number of modes; the crate is specialized to 3-mode tensors.
pub const NMODES: usize = 3;
