//! Index-reordering transforms.
//!
//! The paper contrasts its blocking techniques with the reordering approach
//! of Smith et al. [4], "where re-ordering nonzeros through hypergraph
//! partitioning yielded little improvement in performance", at much higher
//! preprocessing cost. This module provides cheap reorderings — degree
//! sort, random, BFS-like connectivity order — so that claim can be tested
//! directly (see the `reordering` bench binary).

use crate::coo::CooTensor;
use crate::{Idx, NMODES};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A per-mode relabeling: `new_index = map[m][old_index]`.
#[derive(Debug, Clone)]
pub struct Reordering {
    maps: [Vec<Idx>; NMODES],
}

impl Reordering {
    /// The identity reordering.
    pub fn identity(dims: [usize; NMODES]) -> Self {
        Reordering {
            maps: std::array::from_fn(|m| (0..dims[m] as Idx).collect()),
        }
    }

    /// Sorts each mode's indices by decreasing nonzero count (degree), so
    /// hot factor rows become adjacent — the cheap locality heuristic.
    pub fn by_degree(t: &CooTensor) -> Self {
        let dims = t.dims();
        let maps = std::array::from_fn(|m| {
            let mut deg = vec![0usize; dims[m]];
            for e in t.entries() {
                deg[e.idx[m] as usize] += 1;
            }
            let mut order: Vec<Idx> = (0..dims[m] as Idx).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(deg[i as usize]));
            // order[rank] = old index; invert to map old -> new
            let mut map = vec![0 as Idx; dims[m]];
            for (new, &old) in order.iter().enumerate() {
                map[old as usize] = new as Idx;
            }
            map
        });
        Reordering { maps }
    }

    /// Random relabeling of each mode (the worst case for locality).
    pub fn random(dims: [usize; NMODES], seed: u64) -> Self {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed);
        let maps = std::array::from_fn(|m| {
            let mut map: Vec<Idx> = (0..dims[m] as Idx).collect();
            map.shuffle(&mut rng);
            map
        });
        Reordering { maps }
    }

    /// Greedy connectivity order: indices of each mode are visited in the
    /// order they are first touched when streaming nonzeros sorted by the
    /// previous modes — a cheap stand-in for partitioner-driven orders.
    pub fn by_first_touch(t: &CooTensor) -> Self {
        let dims = t.dims();
        let mut sorted = t.clone();
        sorted.sort(crate::coo::MODE1_PERM);
        let maps = std::array::from_fn(|m| {
            let mut map = vec![Idx::MAX; dims[m]];
            let mut next = 0 as Idx;
            for e in sorted.entries() {
                let old = e.idx[m] as usize;
                if map[old] == Idx::MAX {
                    map[old] = next;
                    next += 1;
                }
            }
            // untouched indices keep a stable tail order
            for slot in map.iter_mut() {
                if *slot == Idx::MAX {
                    *slot = next;
                    next += 1;
                }
            }
            map
        });
        Reordering { maps }
    }

    /// The relabeling map for mode `m`.
    pub fn map(&self, m: usize) -> &[Idx] {
        // callers pass m < order == maps.len() — lint: allow(panic-reach)
        &self.maps[m]
    }

    /// Applies the reordering to a tensor.
    pub fn apply(&self, t: &CooTensor) -> CooTensor {
        let entries = t
            .entries()
            .iter()
            .map(|e| crate::Entry {
                idx: std::array::from_fn(|m| self.maps[m][e.idx[m] as usize]),
                val: e.val,
            })
            .collect();
        CooTensor::from_entries(t.dims(), entries)
    }

    /// Applies the matching row permutation to a factor matrix of mode `m`
    /// (so reordered kernels compute the same mathematical result).
    pub fn apply_to_factor(&self, m: usize, f: &crate::DenseMatrix) -> crate::DenseMatrix {
        let mut out = crate::DenseMatrix::zeros(f.rows(), f.cols());
        for old in 0..f.rows() {
            let new = self.maps[m][old] as usize;
            out.row_mut(new).copy_from_slice(f.row(old));
        }
        out
    }
}

/// A locality score: the mean log2 jump distance between consecutive
/// accesses to the mode-2 index stream (lower = more local). Used to
/// quantify what a reordering changed.
pub fn mode2_jump_score(t: &CooTensor) -> f64 {
    let mut sorted = t.clone();
    sorted.sort(crate::coo::MODE1_PERM);
    let e = sorted.entries();
    if e.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for w in e.windows(2) {
        let d = (w[1].idx[1] as i64 - w[0].idx[1] as i64).unsigned_abs();
        total += ((d + 1) as f64).log2();
    }
    total / (e.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{clustered_tensor, uniform_tensor, ClusteredConfig};
    use crate::DenseMatrix;

    #[test]
    fn identity_is_noop() {
        let t = uniform_tensor([10, 12, 14], 100, 1);
        let r = Reordering::identity(t.dims());
        assert_eq!(r.apply(&t).entries(), t.entries());
    }

    #[test]
    fn reorderings_are_bijections() {
        let t = uniform_tensor([20, 30, 25], 400, 5);
        for r in [
            Reordering::by_degree(&t),
            Reordering::random(t.dims(), 3),
            Reordering::by_first_touch(&t),
        ] {
            for m in 0..NMODES {
                let mut seen = r.map(m).to_vec();
                seen.sort_unstable();
                let expect: Vec<Idx> = (0..t.dims()[m] as Idx).collect();
                assert_eq!(seen, expect, "mode {m} map not a bijection");
            }
            let applied = r.apply(&t);
            assert_eq!(applied.nnz(), t.nnz());
        }
    }

    #[test]
    fn degree_sort_puts_hot_rows_first() {
        // index 7 of mode 1 is hottest -> must map to 0
        let t = CooTensor::from_triples(
            [10, 10, 10],
            &[0, 1, 2, 3],
            &[7, 7, 7, 2],
            &[0, 1, 2, 3],
            &[1.0; 4],
        );
        let r = Reordering::by_degree(&t);
        assert_eq!(r.map(1)[7], 0);
    }

    #[test]
    fn factor_permutation_preserves_mttkrp_semantics() {
        let t = uniform_tensor([8, 9, 10], 120, 11);
        let r = Reordering::by_degree(&t);
        let reordered = r.apply(&t);
        // f(new_row) == old f(old_row)
        let f = DenseMatrix::from_fn(9, 4, |row, c| (row * 4 + c) as f64);
        let fp = r.apply_to_factor(1, &f);
        for old in 0..9 {
            assert_eq!(fp.row(r.map(1)[old] as usize), f.row(old));
        }
        assert_eq!(reordered.nnz(), t.nnz());
    }

    #[test]
    fn first_touch_improves_jump_score_on_clustered_data() {
        let cfg = ClusteredConfig {
            dims: [500, 2_000, 500],
            nnz: 10_000,
            n_clusters: 24,
            cluster_frac: 0.95,
            box_frac: 0.03,
        };
        let x = clustered_tensor(&cfg, 9);
        let scrambled = Reordering::random(x.dims(), 1).apply(&x);
        let base_score = mode2_jump_score(&scrambled);
        let touched = Reordering::by_first_touch(&scrambled).apply(&scrambled);
        let new_score = mode2_jump_score(&touched);
        assert!(
            new_score < base_score,
            "first-touch should improve locality: {new_score} vs {base_score}"
        );
    }
}
