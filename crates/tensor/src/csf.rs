//! The Compressed Sparse Fiber (CSF) format — the higher-order extension of
//! the SPLATT format (Smith & Karypis, ref. [12] of the paper).
//!
//! An order-`N` tensor is stored as a forest: level 0 holds the distinct
//! indices of the root mode, each level-`l` node holds a distinct index of
//! mode `perm[l]` within its parent's prefix, and the leaves (level `N-1`)
//! align one-to-one with nonzero values. For `N = 3` with the identity
//! permutation, level 1 is exactly the fiber array of Figure 1b.

use crate::nd::NdCooTensor;
use crate::Idx;

/// An N-mode tensor in CSF form, rooted at mode `perm[0]`.
///
/// ```
/// use tenblock_tensor::{CsfTensor, NdCooTensor};
/// let x = NdCooTensor::from_flat(
///     vec![3, 4, 5, 6],
///     vec![0, 1, 2, 3,  0, 1, 2, 4,  2, 0, 0, 0],
///     vec![1.0, 2.0, 3.0],
/// );
/// let csf = CsfTensor::for_mode(&x, 0);
/// assert_eq!(csf.n_nodes(0), 2);            // roots 0 and 2
/// assert_eq!(csf.nnz(), 3);
/// assert_eq!(csf.to_nd(), x);               // lossless round-trip
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsfTensor {
    dims: Vec<usize>,
    /// Level -> original mode.
    perm: Vec<usize>,
    /// `fids[l][node]` is the mode-`perm[l]` index of node `node` at level
    /// `l`. `fids.len() == order`.
    fids: Vec<Vec<Idx>>,
    /// `ptrs[l][node] .. ptrs[l][node+1]` are node `node`'s children at
    /// level `l+1`. `ptrs.len() == order - 1`.
    ptrs: Vec<Vec<usize>>,
    /// Values, aligned with the leaf level `fids[order-1]`.
    vals: Vec<f64>,
}

impl CsfTensor {
    /// Compresses `t` with the mode order `perm` (a permutation of
    /// `0..order`; `perm[0]` becomes the root/output mode).
    pub fn from_nd(t: &NdCooTensor, perm: &[usize]) -> Self {
        let order = t.order();
        assert_eq!(perm.len(), order, "perm length must equal order");
        {
            let mut seen = vec![false; order];
            for &p in perm {
                assert!(p < order && !seen[p], "invalid mode permutation {perm:?}");
                seen[p] = true;
            }
        }
        let mut sorted = t.clone();
        sorted.sort_and_merge(perm);

        let nnz = sorted.nnz();
        let mut fids: Vec<Vec<Idx>> = vec![Vec::new(); order];
        let mut ptrs: Vec<Vec<usize>> = vec![vec![0]; order.saturating_sub(1)];
        let mut vals = Vec::with_capacity(nnz);
        // the coordinate prefix (in perm order) of the currently open path
        let mut open: Vec<Option<Idx>> = vec![None; order];

        for n in 0..nnz {
            let c = sorted.coord(n);
            // first level where this entry's path diverges from the open one
            let mut diverge = order;
            for (l, &m) in perm.iter().enumerate() {
                if open[l] != Some(c[m]) {
                    diverge = l;
                    break;
                }
            }
            // open new nodes from the divergence level down to the leaf
            for (l, &m) in perm.iter().enumerate().skip(diverge) {
                fids[l].push(c[m]);
                open[l] = Some(c[m]);
                for o in open.iter_mut().skip(l + 1) {
                    *o = None;
                }
                if l + 1 < order {
                    // this node's children start where level l+1 currently
                    // ends plus the leaf/node we are about to create; close
                    // the boundary when the NEXT level-l node opens — i.e.
                    // record the running end now and overwrite on growth
                    ptrs[l].push(fids[l + 1].len());
                }
                if l > 0 {
                    // extend the parent's (already pushed) end boundary
                    *ptrs[l - 1].last_mut().expect("parent boundary exists") = fids[l].len();
                }
            }
            vals.push(sorted.value(n));
        }
        // every boundary list has one final end equal to the child count
        for l in 0..order.saturating_sub(1) {
            debug_assert_eq!(ptrs[l].len(), fids[l].len() + 1);
            debug_assert_eq!(*ptrs[l].last().unwrap(), fids[l + 1].len());
        }

        CsfTensor {
            dims: t.dims().to_vec(),
            perm: perm.to_vec(),
            fids,
            ptrs,
            vals,
        }
    }

    /// CSF rooted at mode `m` with the cyclic mode order `m, m+1, …`.
    pub fn for_mode(t: &NdCooTensor, m: usize) -> Self {
        let order = t.order();
        assert!(m < order, "mode out of range");
        let perm: Vec<usize> = (0..order).map(|l| (m + l) % order).collect();
        Self::from_nd(t, &perm)
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode lengths (original order).
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Level-to-mode permutation.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of nodes at level `l`.
    pub fn n_nodes(&self, l: usize) -> usize {
        self.fids[l].len()
    }

    /// The mode-`perm[l]` index of node `node` at level `l`.
    #[inline]
    pub fn fid(&self, l: usize, node: usize) -> Idx {
        self.fids[l][node]
    }

    /// The children range of node `node` at level `l` (`l < order - 1`).
    #[inline]
    pub fn children(&self, l: usize, node: usize) -> std::ops::Range<usize> {
        self.ptrs[l][node]..self.ptrs[l][node + 1]
    }

    /// Leaf values.
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Reconstructs the entries as a flat `(coords, vals)` pair in
    /// original mode order.
    pub fn to_nd(&self) -> NdCooTensor {
        let order = self.order();
        // nnz·order coordinates were already materialized to build self — lint: allow(index-overflow)
        let mut coords: Vec<Idx> = Vec::with_capacity(self.nnz() * order);
        let mut vals = Vec::with_capacity(self.nnz());
        let mut path = vec![0 as Idx; order];
        self.walk(0, 0..self.n_nodes(0), &mut path, &mut coords, &mut vals);
        NdCooTensor::from_flat(self.dims.clone(), coords, vals)
    }

    fn walk(
        &self,
        l: usize,
        nodes: std::ops::Range<usize>,
        path: &mut Vec<Idx>,
        coords: &mut Vec<Idx>,
        vals: &mut Vec<f64>,
    ) {
        for node in nodes {
            path[self.perm[l]] = self.fids[l][node];
            if l == self.order() - 1 {
                coords.extend_from_slice(path);
                vals.push(self.vals[node]);
            } else {
                self.walk(l + 1, self.children(l, node), path, coords, vals);
            }
        }
    }

    /// Storage bytes of this representation.
    pub fn actual_bytes(&self) -> usize {
        self.fids.iter().map(|f| f.len() * 4).sum::<usize>()
            + self.ptrs.iter().map(|p| p.len() * 8).sum::<usize>()
            + self.vals.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nd::uniform_nd;

    fn fig1_nd() -> NdCooTensor {
        NdCooTensor::from_flat(
            vec![3, 3, 3],
            vec![
                0, 0, 0, //
                0, 1, 1, //
                0, 1, 2, //
                1, 0, 2, //
                1, 1, 1, //
                1, 2, 2, //
                2, 0, 0,
            ],
            vec![5.0, 3.0, 1.0, 2.0, 9.0, 7.0, 9.0],
        )
    }

    #[test]
    fn csf3_matches_splatt_structure() {
        // with mode order (root, k, j) CSF level 1 = the fibers of Fig. 1b
        let t = CsfTensor::from_nd(&fig1_nd(), &[0, 2, 1]);
        assert_eq!(t.n_nodes(0), 3); // three non-empty slices
        assert_eq!(t.n_nodes(1), 6); // six fibers
        assert_eq!(t.nnz(), 7);
        // slice 0 has fibers k = 0, 1, 2
        let kids: Vec<Idx> = t.children(0, 0).map(|f| t.fid(1, f)).collect();
        assert_eq!(kids, vec![0, 1, 2]);
    }

    #[test]
    fn roundtrip_various_orders_and_roots() {
        for order in [2usize, 3, 4, 5] {
            let dims: Vec<usize> = (0..order).map(|m| 4 + m).collect();
            let cells: usize = dims.iter().product();
            let x = uniform_nd(&dims, 60.min(cells / 2), order as u64);
            for root in 0..order {
                let csf = CsfTensor::for_mode(&x, root);
                let back = csf.to_nd();
                assert_eq!(back, x, "order {order} root {root} round-trip failed");
            }
        }
    }

    #[test]
    fn empty_tensor() {
        let x = NdCooTensor::empty(vec![3, 4, 5, 6]);
        let csf = CsfTensor::for_mode(&x, 1);
        assert_eq!(csf.nnz(), 0);
        assert_eq!(csf.n_nodes(0), 0);
        assert_eq!(csf.to_nd().nnz(), 0);
    }

    #[test]
    fn single_entry() {
        let x = NdCooTensor::from_flat(vec![4, 4, 4, 4], vec![1, 2, 3, 0], vec![8.0]);
        let csf = CsfTensor::for_mode(&x, 2); // perm = [2, 3, 0, 1]
        assert_eq!(csf.n_nodes(0), 1);
        assert_eq!(csf.fid(0, 0), 3);
        assert_eq!(csf.to_nd(), x);
    }

    #[test]
    fn node_counts_decrease_up_the_tree() {
        let x = uniform_nd(&[6, 7, 8, 9], 150, 5);
        let csf = CsfTensor::for_mode(&x, 0);
        for l in 1..csf.order() {
            assert!(csf.n_nodes(l) >= csf.n_nodes(l - 1));
        }
        assert_eq!(csf.n_nodes(csf.order() - 1), csf.nnz());
    }
}
