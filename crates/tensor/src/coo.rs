//! Coordinate (COO) sparse tensor format (Figure 1a of the paper).
//!
//! Each nonzero is stored as its `(i, j, k)` coordinates plus its value. The
//! COO format is the interchange format of this crate: generators and file
//! readers produce it, and [`crate::SplattTensor`] and the blocking grid in
//! `tenblock-core` are built from it.

use crate::{Idx, NMODES};

/// Typed construction errors for [`CooTensor`].
///
/// The panicking constructors ([`CooTensor::from_entries`],
/// [`CooTensor::from_triples`]) delegate to the fallible `try_*` variants
/// and panic with the error's message; boundary code (file readers, the
/// serve registry, the fuzzer) uses the `try_*` forms directly so hostile
/// input becomes a value, not a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// A coordinate is not strictly below its mode's dimension.
    CoordOutOfRange {
        /// Mode of the offending coordinate.
        mode: usize,
        /// The coordinate value.
        coord: Idx,
        /// The dimension it must stay below.
        dim: usize,
    },
    /// A value is NaN or infinite (sparse kernels assume finite data).
    NonFiniteValue {
        /// Index of the offending entry in construction order.
        entry: usize,
    },
    /// Parallel coordinate/value slices have different lengths.
    LengthMismatch {
        /// The four slice lengths `(is, js, ks, vals)`.
        lens: [usize; 4],
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::CoordOutOfRange { mode, coord, dim } => write!(
                f,
                "coordinate {coord} out of range for mode {mode} (dim {dim})"
            ),
            TensorError::NonFiniteValue { entry } => {
                write!(f, "non-finite value at entry {entry}")
            }
            TensorError::LengthMismatch { lens } => write!(
                f,
                "coordinate/value slices must have equal length (got {lens:?})"
            ),
        }
    }
}

impl std::error::Error for TensorError {}

/// One nonzero: its coordinate in each mode and its value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Coordinates, one per mode, `0 <= idx[m] < dims[m]`.
    pub idx: [Idx; NMODES],
    /// The nonzero value.
    pub val: f64,
}

impl Entry {
    /// Creates an entry from coordinates and a value.
    pub fn new(i: Idx, j: Idx, k: Idx, val: f64) -> Self {
        Entry {
            idx: [i, j, k],
            val,
        }
    }
}

/// A 3-mode sparse tensor in coordinate format.
///
/// Invariants maintained by all constructors:
/// * every coordinate is strictly below the corresponding dimension,
/// * no two entries share the same coordinate triple (duplicates are summed).
///
/// Entry *order* is not an invariant; [`CooTensor::sort`] establishes a
/// lexicographic order for a chosen mode permutation.
///
/// ```
/// use tenblock_tensor::CooTensor;
/// let x = CooTensor::from_triples(
///     [2, 3, 4],
///     &[0, 1, 1],   // i
///     &[2, 0, 0],   // j
///     &[3, 1, 1],   // k  (the last two entries collide and are summed)
///     &[1.0, 2.0, 0.5],
/// );
/// assert_eq!(x.nnz(), 2);
/// assert_eq!(x.entries()[1].val, 2.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CooTensor {
    dims: [usize; NMODES],
    entries: Vec<Entry>,
}

impl CooTensor {
    /// Builds a tensor from raw entries, rejecting malformed input with a
    /// typed [`TensorError`] instead of panicking.
    ///
    /// Duplicate coordinates are combined by summing their values; entries
    /// whose combined value is exactly `0.0` are kept (explicit zeros are
    /// legal nonzero *positions* in sparse-tensor libraries). NaN and
    /// infinite values are rejected: every downstream kernel assumes
    /// finite arithmetic.
    pub fn try_from_entries(
        dims: [usize; NMODES],
        mut entries: Vec<Entry>,
    ) -> Result<Self, TensorError> {
        for (n, e) in entries.iter().enumerate() {
            for (m, (&c, &dim)) in e.idx.iter().zip(dims.iter()).enumerate() {
                if (c as usize) >= dim {
                    return Err(TensorError::CoordOutOfRange {
                        mode: m,
                        coord: c,
                        dim,
                    });
                }
            }
            if !e.val.is_finite() {
                return Err(TensorError::NonFiniteValue { entry: n });
            }
        }
        entries.sort_unstable_by_key(|e| e.idx);
        entries.dedup_by(|next, acc| {
            if next.idx == acc.idx {
                acc.val += next.val;
                true
            } else {
                false
            }
        });
        Ok(CooTensor { dims, entries })
    }

    /// Builds a tensor from raw entries.
    ///
    /// Semantics of [`CooTensor::try_from_entries`] (duplicates summed,
    /// explicit zeros kept).
    ///
    /// # Panics
    /// Panics if any coordinate is out of range for `dims` or any value is
    /// non-finite.
    pub fn from_entries(dims: [usize; NMODES], entries: Vec<Entry>) -> Self {
        match Self::try_from_entries(dims, entries) {
            Ok(t) => t,
            Err(e) => panic!("{e}"), // documented panic; trusted in-memory callers (generators) — lint: allow(panic-reach)
        }
    }

    /// Builds a tensor from parallel coordinate/value slices, rejecting
    /// malformed input with a typed [`TensorError`].
    pub fn try_from_triples(
        dims: [usize; NMODES],
        is: &[Idx],
        js: &[Idx],
        ks: &[Idx],
        vals: &[f64],
    ) -> Result<Self, TensorError> {
        if !(is.len() == js.len() && js.len() == ks.len() && ks.len() == vals.len()) {
            return Err(TensorError::LengthMismatch {
                lens: [is.len(), js.len(), ks.len(), vals.len()],
            });
        }
        let entries = (0..is.len())
            .map(|n| Entry::new(is[n], js[n], ks[n], vals[n]))
            .collect();
        Self::try_from_entries(dims, entries)
    }

    /// Builds a tensor from parallel coordinate/value slices.
    ///
    /// # Panics
    /// Panics on mismatched slice lengths, out-of-range coordinates, or
    /// non-finite values.
    pub fn from_triples(
        dims: [usize; NMODES],
        is: &[Idx],
        js: &[Idx],
        ks: &[Idx],
        vals: &[f64],
    ) -> Self {
        match Self::try_from_triples(dims, is, js, ks, vals) {
            Ok(t) => t,
            Err(e) => panic!("{e}"), // documented panic; trusted in-memory callers (generators) — lint: allow(panic-reach)
        }
    }

    /// An empty tensor of the given shape.
    pub fn empty(dims: [usize; NMODES]) -> Self {
        CooTensor {
            dims,
            entries: Vec::new(),
        }
    }

    /// Mode lengths `(I, J, K)`.
    pub fn dims(&self) -> [usize; NMODES] {
        self.dims
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The stored entries, in their current order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Mutable access to values only (coordinates stay fixed).
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut f64> {
        self.entries.iter_mut().map(|e| &mut e.val)
    }

    /// Sorts entries lexicographically by `(idx[perm[0]], idx[perm[2]],
    /// idx[perm[1]])` — i.e. slice mode, then fiber mode, then the
    /// within-fiber mode. This is exactly the order required to build the
    /// SPLATT format oriented by `perm` (fibers vary along `perm[1]`).
    pub fn sort(&mut self, perm: [usize; NMODES]) {
        debug_assert!(is_permutation(perm));
        self.entries
            .sort_unstable_by_key(|e| (e.idx[perm[0]], e.idx[perm[2]], e.idx[perm[1]]));
    }

    /// Returns a new tensor whose mode `m` is the old mode `perm[m]`
    /// (coordinates and dimensions are relabeled accordingly).
    pub fn permute_modes(&self, perm: [usize; NMODES]) -> CooTensor {
        debug_assert!(is_permutation(perm));
        let dims = [self.dims[perm[0]], self.dims[perm[1]], self.dims[perm[2]]];
        let entries = self
            .entries
            .iter()
            .map(|e| Entry {
                idx: [e.idx[perm[0]], e.idx[perm[1]], e.idx[perm[2]]],
                val: e.val,
            })
            .collect();
        CooTensor { dims, entries }
    }

    /// The Frobenius norm `sqrt(sum of squared values)`.
    pub fn frob_norm(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.val * e.val)
            .sum::<f64>()
            .sqrt()
    }

    /// Sum of squared values (`||X||_F^2`), used by CPD fit computation.
    pub fn sq_norm(&self) -> f64 {
        self.entries.iter().map(|e| e.val * e.val).sum()
    }

    /// Counts the non-empty fibers for a given orientation: a fiber is a
    /// distinct `(idx[perm[0]], idx[perm[2]])` pair (slice index, fiber
    /// index), matching the `F` of Equation 1.
    pub fn count_fibers(&self, perm: [usize; NMODES]) -> usize {
        debug_assert!(is_permutation(perm));
        let mut keys: Vec<(Idx, Idx)> = self
            .entries
            .iter()
            .map(|e| (e.idx[perm[0]], e.idx[perm[2]]))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Memory footprint of the COO representation in bytes, per the paper's
    /// accounting (`32 * nnz` with 64-bit indices and values; we report the
    /// actual footprint of this implementation alongside).
    pub fn paper_bytes(&self) -> usize {
        32 * self.nnz()
    }

    /// Actual bytes used by this implementation (3 × u32 + f64 per entry,
    /// padded to the `Entry` struct size).
    pub fn actual_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<Entry>()
    }
}

/// True iff `perm` is a permutation of `{0, 1, 2}`.
pub fn is_permutation(perm: [usize; NMODES]) -> bool {
    let mut seen = [false; NMODES];
    for &p in &perm {
        if p >= NMODES || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// The identity orientation: slices along mode 0, fibers varying along mode 1
/// (the paper's mode-1 MTTKRP layout of Figure 1b).
pub const MODE1_PERM: [usize; NMODES] = [0, 1, 2];

/// Cyclic orientation for the mode-`m` MTTKRP: slices along `m`, within-fiber
/// mode `m+1`, fiber mode `m+2` (all mod 3).
pub fn perm_for_mode(m: usize) -> [usize; NMODES] {
    assert!(m < NMODES, "mode out of range");
    [m, (m + 1) % NMODES, (m + 2) % NMODES]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CooTensor {
        // The 3x3x3 example of Figure 1 (1-based in the paper, 0-based here).
        CooTensor::from_triples(
            [3, 3, 3],
            &[0, 0, 0, 1, 1, 1, 2],
            &[0, 1, 1, 0, 1, 2, 0],
            &[0, 1, 2, 2, 1, 2, 0],
            &[5.0, 3.0, 1.0, 2.0, 9.0, 7.0, 9.0],
        )
    }

    #[test]
    fn construction_and_accessors() {
        let t = small();
        assert_eq!(t.dims(), [3, 3, 3]);
        assert_eq!(t.nnz(), 7);
        assert!((t.frob_norm().powi(2) - t.sq_norm()).abs() < 1e-12);
    }

    #[test]
    fn duplicates_are_summed() {
        let t = CooTensor::from_triples(
            [2, 2, 2],
            &[0, 0, 1],
            &[1, 1, 0],
            &[1, 1, 0],
            &[2.0, 3.0, 4.0],
        );
        assert_eq!(t.nnz(), 2);
        let e = t
            .entries()
            .iter()
            .find(|e| e.idx == [0, 1, 1])
            .expect("merged entry present");
        assert_eq!(e.val, 5.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        CooTensor::from_triples([2, 2, 2], &[2], &[0], &[0], &[1.0]);
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        // Formerly-panicking input classes now come back as values.
        assert_eq!(
            CooTensor::try_from_triples([2, 2, 2], &[2], &[0], &[0], &[1.0]),
            Err(TensorError::CoordOutOfRange {
                mode: 0,
                coord: 2,
                dim: 2
            })
        );
        assert_eq!(
            CooTensor::try_from_triples([2, 2, 2], &[0], &[0], &[0], &[f64::NAN]),
            Err(TensorError::NonFiniteValue { entry: 0 })
        );
        assert_eq!(
            CooTensor::try_from_triples([2, 2, 2], &[0, 1], &[0], &[0], &[1.0]),
            Err(TensorError::LengthMismatch { lens: [2, 1, 1, 1] })
        );
        // Valid input still round-trips, duplicates still summed.
        let t =
            CooTensor::try_from_triples([2, 2, 2], &[1, 1], &[0, 0], &[1, 1], &[2.0, 3.0]).unwrap();
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.entries()[0].val, 5.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_value_panics() {
        CooTensor::from_triples([2, 2, 2], &[0], &[0], &[0], &[f64::INFINITY]);
    }

    #[test]
    fn sort_orders_slice_then_fiber_then_j() {
        let mut t = small();
        t.sort(MODE1_PERM);
        let e = t.entries();
        for w in e.windows(2) {
            let a = (w[0].idx[0], w[0].idx[2], w[0].idx[1]);
            let b = (w[1].idx[0], w[1].idx[2], w[1].idx[1]);
            assert!(a <= b, "entries not sorted: {a:?} > {b:?}");
        }
    }

    #[test]
    fn permute_roundtrip() {
        let t = small();
        let p = t.permute_modes([2, 0, 1]);
        assert_eq!(p.dims(), [3, 3, 3]);
        // applying the inverse permutation restores the original
        let back = p.permute_modes([1, 2, 0]);
        let mut a = t.entries().to_vec();
        let mut b = back.entries().to_vec();
        a.sort_unstable_by_key(|e| e.idx);
        b.sort_unstable_by_key(|e| e.idx);
        assert_eq!(a, b);
    }

    #[test]
    fn fiber_count_matches_figure1() {
        // Figure 1b shows 6 fibers for the example tensor in mode-1
        // orientation (rows 1..3 hold 3, 2, 1 fibers).
        let t = small();
        assert_eq!(t.count_fibers(MODE1_PERM), 6);
    }

    #[test]
    fn empty_tensor() {
        let t = CooTensor::empty([4, 5, 6]);
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.count_fibers(MODE1_PERM), 0);
        assert_eq!(t.frob_norm(), 0.0);
    }

    #[test]
    fn perm_helpers() {
        assert!(is_permutation([0, 1, 2]));
        assert!(is_permutation([2, 0, 1]));
        assert!(!is_permutation([0, 0, 2]));
        assert_eq!(perm_for_mode(0), [0, 1, 2]);
        assert_eq!(perm_for_mode(1), [1, 2, 0]);
        assert_eq!(perm_for_mode(2), [2, 0, 1]);
    }
}
