//! Dense factor matrices.
//!
//! [`DenseMatrix`] is the ordinary row-major layout used by the baseline
//! SPLATT kernel. [`StripMatrix`] is the rank-strip layout of Section V-B:
//! the factor matrix is cut into `n_strips` column strips which are stacked
//! vertically, making accesses within one rank block fully sequential (an
//! `(I * n_strips) x strip_width` matrix in the paper's description).

use std::fmt;

/// A row-major dense matrix of `f64`, used for factor matrices.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// A zero-filled `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        DenseMatrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the decomposition rank for factor matrices).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// The backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The backing row-major slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Splits the matrix into disjoint mutable row chunks of `chunk_rows`
    /// rows each (the last chunk may be shorter). Used to hand disjoint
    /// output ranges to rayon workers.
    pub fn par_row_chunks_mut(&mut self, chunk_rows: usize) -> Vec<(usize, &mut [f64])> {
        assert!(chunk_rows > 0);
        let cols = self.cols;
        self.data
            .chunks_mut(chunk_rows * cols)
            .enumerate()
            .map(|(c, chunk)| (c * chunk_rows, chunk))
            .collect()
    }

    /// Fills the matrix with zeros.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute element-wise difference to `other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True if all elements are within `tol` of `other`, scaled by magnitude
    /// (`|a-b| <= tol * max(1, |a|, |b|)`).
    pub fn approx_eq(&self, other: &DenseMatrix, tol: f64) -> bool {
        if (self.rows, self.cols) != (other.rows, other.cols) {
            return false;
        }
        self.data.iter().zip(&other.data).all(|(a, b)| {
            let scale = 1.0_f64.max(a.abs()).max(b.abs());
            (a - b).abs() <= tol * scale
        })
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DenseMatrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            writeln!(f)?;
            for r in 0..self.rows {
                writeln!(f, "  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

/// The rank-strip factor layout of Section V-B.
///
/// The matrix's `cols` columns are divided into strips of `strip_width`
/// columns (the last strip may be narrower). Strip `s` is stored as its own
/// contiguous row-major block, and the blocks are stacked: the paper's
/// "(I * N_RankB) x BS_RankB matrix". Accessing rows of one strip touches a
/// contiguous region, which keeps the hardware prefetcher effective and
/// reduces page misses.
#[derive(Clone, Debug, PartialEq)]
pub struct StripMatrix {
    rows: usize,
    cols: usize,
    strip_width: usize,
    /// Byte offsets of each strip block inside `data` (in f64 elements),
    /// plus a final end offset.
    strip_off: Vec<usize>,
    data: Vec<f64>,
}

impl StripMatrix {
    /// Re-lays out `m` into strips of `strip_width` columns.
    ///
    /// # Panics
    /// Panics if `strip_width == 0`.
    pub fn from_dense(m: &DenseMatrix, strip_width: usize) -> Self {
        assert!(strip_width > 0, "strip width must be positive");
        let rows = m.rows();
        let cols = m.cols();
        let n_strips = cols.div_ceil(strip_width);
        let mut data = Vec::with_capacity(rows * cols);
        let mut strip_off = Vec::with_capacity(n_strips + 1);
        for s in 0..n_strips {
            strip_off.push(data.len());
            let c0 = s * strip_width;
            let c1 = cols.min(c0 + strip_width);
            for r in 0..rows {
                data.extend_from_slice(&m.row(r)[c0..c1]);
            }
        }
        strip_off.push(data.len());
        StripMatrix {
            rows,
            cols,
            strip_width,
            strip_off,
            data,
        }
    }

    /// Number of logical rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of logical columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of strips.
    pub fn n_strips(&self) -> usize {
        self.strip_off.len() - 1
    }

    /// Configured strip width (last strip may be narrower).
    pub fn strip_width(&self) -> usize {
        self.strip_width
    }

    /// Width of strip `s`.
    #[inline]
    pub fn width_of(&self, s: usize) -> usize {
        let c0 = s * self.strip_width;
        (self.cols - c0).min(self.strip_width)
    }

    /// First column covered by strip `s`.
    #[inline]
    pub fn col_begin(&self, s: usize) -> usize {
        s * self.strip_width
    }

    /// Row `r` of strip `s` as a contiguous slice of `width_of(s)` values.
    #[inline]
    pub fn strip_row(&self, s: usize, r: usize) -> &[f64] {
        let w = self.width_of(s);
        let base = self.strip_off[s] + r * w;
        &self.data[base..base + w]
    }

    /// Converts back to the ordinary row-major layout.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for s in 0..self.n_strips() {
            let c0 = self.col_begin(s);
            let w = self.width_of(s);
            for r in 0..self.rows {
                out.row_mut(r)[c0..c0 + w].copy_from_slice(self.strip_row(s, r));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_access() {
        let mut m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        m.set(1, 2, 7.5);
        assert_eq!(m.get(1, 2), 7.5);
        assert_eq!(m.row(1), &[0.0, 0.0, 7.5, 0.0]);
    }

    #[test]
    fn from_fn_layout() {
        let m = DenseMatrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn row_chunks_are_disjoint_and_cover() {
        let mut m = DenseMatrix::from_fn(5, 2, |r, _| r as f64);
        let chunks = m.par_row_chunks_mut(2);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].0, 0);
        assert_eq!(chunks[1].0, 2);
        assert_eq!(chunks[2].0, 4);
        let total: usize = chunks.iter().map(|(_, c)| c.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn approx_eq_and_diff() {
        let a = DenseMatrix::from_fn(2, 2, |r, c| (r + c) as f64);
        let mut b = a.clone();
        assert!(a.approx_eq(&b, 0.0));
        b.set(1, 1, b.get(1, 1) + 1e-9);
        assert!(a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&b, 1e-12));
        assert!(a.max_abs_diff(&b) > 0.0);
    }

    #[test]
    fn strip_roundtrip_exact_division() {
        let m = DenseMatrix::from_fn(4, 8, |r, c| (r * 100 + c) as f64);
        let s = StripMatrix::from_dense(&m, 4);
        assert_eq!(s.n_strips(), 2);
        assert_eq!(s.width_of(0), 4);
        assert_eq!(s.width_of(1), 4);
        assert_eq!(s.to_dense(), m);
        assert_eq!(s.strip_row(1, 2), &[204.0, 205.0, 206.0, 207.0]);
    }

    #[test]
    fn strip_roundtrip_ragged() {
        let m = DenseMatrix::from_fn(3, 10, |r, c| (r * 100 + c) as f64);
        let s = StripMatrix::from_dense(&m, 4);
        assert_eq!(s.n_strips(), 3);
        assert_eq!(s.width_of(2), 2);
        assert_eq!(s.col_begin(2), 8);
        assert_eq!(s.to_dense(), m);
    }

    #[test]
    fn strip_wider_than_matrix() {
        let m = DenseMatrix::from_fn(2, 3, |r, c| (r + c) as f64);
        let s = StripMatrix::from_dense(&m, 16);
        assert_eq!(s.n_strips(), 1);
        assert_eq!(s.width_of(0), 3);
        assert_eq!(s.to_dense(), m);
    }
}
