//! The on-disk tile store: a `.tnsb` v2 payload holding a tensor as a
//! grid of MB-aligned COO tiles, loadable one tile at a time.
//!
//! The grid partitions the *original* axes with the same
//! [`uniform_bounds`] arithmetic the MB/BCOO layouts use, so one store
//! serves all three MTTKRP orientations: mode `m`'s kernel grid is just
//! the original grid read through `perm_for_mode(m)`. Entries inside a
//! tile are stored block-local (`u32` offset per axis + `f64` value, 20
//! bytes an entry), which is what lets a streaming driver hand a loaded
//! tile straight to the BCOO micro-kernel after a per-mode re-sort.
//!
//! Layout after the shared versioned header ([`crate::io_bin`],
//! `version = 2`):
//!
//! ```text
//! grid     u32 * 3                 tiles per original axis
//! n_tiles  u64                     nonempty tiles only
//! table    (cell u32*3, nnz u64, off u64, len u64) * n_tiles
//! payload  (local u32*3, val f64) * nnz   per tile, contiguous
//! ```
//!
//! The reader is an input boundary: tiles must be sorted by linear cell
//! id with no duplicates, payloads must be contiguous and exactly sized
//! (`len == nnz * 20`, offsets tiling the rest of the file), per-tile
//! `nnz` must fit the cell volume, and every local offset must fall
//! inside its tile's span. Anything else is a typed [`BinError`], never
//! a panic — the fuzzer's tile-framing mutants hold it to that.

use crate::bcoo::uniform_bounds;
use crate::coo::CooTensor;
use crate::io_bin::{
    read_header, read_u32, read_u64, write_header, write_u32, write_u64, BinError, BinHeader,
    VERSION_COO, VERSION_TILES,
};
use crate::persist::{AtomicFile, FaultRead};
use crate::source::SourceTile;
use crate::{Entry, Idx, NMODES};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use tenblock_faults::FaultPolicy;

/// Bytes per stored tile entry: three `u32` locals plus the `f64` value.
pub const TILE_ENTRY_BYTES: u64 = 20;

/// Bytes per tile-table record: cell, nnz, offset, length.
const TABLE_RECORD_BYTES: u64 = 12 + 8 + 8 + 8;

/// One tile's table record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileMeta {
    /// Grid cell per original axis.
    pub cell: [u32; NMODES],
    /// Nonzeros in the tile.
    pub nnz: u64,
    /// Absolute file offset of the tile's payload.
    pub off: u64,
    /// Payload length in bytes (`nnz * TILE_ENTRY_BYTES`).
    pub len: u64,
}

/// The parsed, validated structure of a tile store (header + table).
#[derive(Debug, Clone)]
struct StoreMeta {
    dims: [usize; NMODES],
    grid: [usize; NMODES],
    nnz: u64,
    tiles: Vec<TileMeta>,
    bounds: [Vec<usize>; NMODES],
}

/// A spillable on-disk tensor: the table lives in memory (36 bytes per
/// nonempty tile), the payloads stay on disk until [`TileStore::load_tile`].
#[derive(Debug, Clone)]
pub struct TileStore {
    path: PathBuf,
    meta: StoreMeta,
    faults: FaultPolicy,
}

/// The linear cell id ordering tiles in the file: original-axes
/// row-major.
fn cell_id(cell: [u32; NMODES], grid: [usize; NMODES]) -> u64 {
    // id < cell count, which check_grid bounds to u64 — lint: allow(index-overflow, panic-reach)
    (cell[0] as u64 * grid[1] as u64 + cell[1] as u64) * grid[2] as u64 + cell[2] as u64
}

/// The grid cell containing `idx` under uniform bounds (the inverse of
/// [`uniform_bounds`], via partition point).
fn cell_of(bounds: &[usize], idx: usize) -> usize {
    bounds.partition_point(|&b| b <= idx) - 1
}

fn check_grid(dims: [usize; NMODES], grid: [usize; NMODES]) -> Result<(), BinError> {
    for (ax, (&g, &d)) in grid.iter().zip(dims.iter()).enumerate() {
        if g == 0 || g > d.max(1) {
            return Err(BinError::Format(format!(
                "tile grid count {g} invalid for axis {ax} of length {d}"
            )));
        }
    }
    // Linear cell ids are formed by u64 multiply-accumulate over the
    // grid axes; bound the cell count so those products cannot wrap.
    let cells = grid.iter().map(|&g| g as u128).product::<u128>();
    if cells > u64::MAX as u128 {
        return Err(BinError::Format(format!(
            "tile grid of {cells} cells exceeds the supported maximum"
        )));
    }
    Ok(())
}

/// Parses and validates the header + grid + tile table of a v2 store.
/// `total_len` is the byte length of the whole stream; payload offsets
/// must tile `[table_end, total_len)` exactly, in order.
fn parse_meta<R: Read>(r: &mut R, total_len: u64) -> Result<StoreMeta, BinError> {
    let h = read_header(r)?;
    if h.version != VERSION_TILES {
        return Err(BinError::Format(format!(
            "unsupported tile-store version {}",
            h.version
        )));
    }
    let dims: [usize; NMODES] = h.dims.as_slice().try_into().map_err(|_| {
        BinError::Format(format!(
            "tile store requires a 3-mode tensor, file has order {}",
            h.dims.len()
        ))
    })?;
    let mut grid = [0usize; NMODES];
    for g in grid.iter_mut() {
        *g = read_u32(r)? as usize;
    }
    check_grid(dims, grid)?;
    // dims and grid are fixed [_; NMODES] arrays — lint: allow(panic-reach)
    let bounds = [
        uniform_bounds(dims[0], grid[0]), // lint: allow(panic-reach)
        uniform_bounds(dims[1], grid[1]), // lint: allow(panic-reach)
        uniform_bounds(dims[2], grid[2]), // lint: allow(panic-reach)
    ];
    let n_tiles = read_u64(r)?;
    let cells = grid.iter().map(|&g| g as u128).product::<u128>();
    if n_tiles as u128 > cells {
        return Err(BinError::Format(format!(
            "tile table lists {n_tiles} tiles but the grid has {cells} cells"
        )));
    }
    // n_tiles is untrusted; a wrapped table size would defeat the
    // truncation check below.
    let table_end = n_tiles
        .checked_mul(TABLE_RECORD_BYTES)
        .and_then(|t| t.checked_add(h.encoded_len() as u64 + 12 + 8))
        .ok_or_else(|| BinError::Format("tile table size overflows".into()))?;
    if table_end > total_len {
        return Err(BinError::Format("truncated tile table".into()));
    }

    let mut tiles = Vec::with_capacity(n_tiles as usize);
    let mut prev_id = None;
    let mut expected_off = table_end;
    let mut total_nnz: u64 = 0;
    for t in 0..n_tiles {
        let mut cell = [0u32; NMODES];
        for c in cell.iter_mut() {
            *c = read_u32(r)?;
        }
        for (ax, (&c, &g)) in cell.iter().zip(grid.iter()).enumerate() {
            if c as usize >= g {
                return Err(BinError::Format(format!(
                    "tile {t}: cell {c} out of grid range on axis {ax}"
                )));
            }
        }
        let id = cell_id(cell, grid);
        if prev_id.is_some_and(|p| id <= p) {
            return Err(BinError::Format(format!(
                "tile {t}: cell {cell:?} duplicates or reorders an earlier tile extent"
            )));
        }
        prev_id = Some(id);
        let nnz = read_u64(r)?;
        let off = read_u64(r)?;
        let len = read_u64(r)?;
        if len != nnz.saturating_mul(TILE_ENTRY_BYTES) {
            return Err(BinError::Format(format!(
                "tile {t}: length {len} disagrees with nnz {nnz}"
            )));
        }
        let volume: u128 = (0..NMODES)
            .map(|ax| {
                // ax < NMODES; c < grid[ax] (checked above) and
                // bounds[ax].len() == grid[ax] + 1
                let c = cell[ax] as usize; // lint: allow(panic-reach)
                (bounds[ax][c + 1] - bounds[ax][c]) as u128 // lint: allow(panic-reach)
            })
            .product();
        if nnz as u128 > volume {
            return Err(BinError::Format(format!(
                "tile {t}: nnz {nnz} exceeds the cell volume {volume}"
            )));
        }
        if off != expected_off {
            return Err(BinError::Format(format!(
                "tile {t}: payload offset {off} overlaps or skips bytes (expected {expected_off})"
            )));
        }
        expected_off = off + len;
        total_nnz += nnz;
        tiles.push(TileMeta {
            cell,
            nnz,
            off,
            len,
        });
    }
    if expected_off != total_len {
        return Err(BinError::Format(format!(
            "payloads end at {expected_off} but the file has {total_len} bytes"
        )));
    }
    if total_nnz != h.nnz {
        return Err(BinError::Format(format!(
            "tile nnz sum {total_nnz} disagrees with header nnz {}",
            h.nnz
        )));
    }
    Ok(StoreMeta {
        dims,
        grid,
        nnz: h.nnz,
        tiles,
        bounds,
    })
}

/// Decodes one tile's payload bytes into a [`SourceTile`], validating
/// every local offset against the tile's span.
fn decode_tile(meta: &StoreMeta, t: usize, payload: &[u8]) -> Result<SourceTile, BinError> {
    // callers iterate t < meta.tiles.len() — lint: allow(panic-reach)
    let tm = &meta.tiles[t];
    if payload.len() as u64 != tm.len {
        return Err(BinError::Format(format!(
            "tile {t}: payload has {} bytes, table says {}",
            payload.len(),
            tm.len
        )));
    }
    let mut origin = [0usize; NMODES];
    let mut span = [0usize; NMODES];
    for ax in 0..NMODES {
        // parse_meta established cell[ax] < grid[ax] and
        // bounds[ax].len() == grid[ax] + 1
        let c = tm.cell[ax] as usize; // lint: allow(panic-reach)
        origin[ax] = meta.bounds[ax][c]; // lint: allow(panic-reach)
        span[ax] = meta.bounds[ax][c + 1] - meta.bounds[ax][c]; // lint: allow(panic-reach)
    }
    let n = tm.nnz as usize;
    let mut locals = Vec::with_capacity(n);
    let mut vals = Vec::with_capacity(n);
    for (e, rec) in payload.chunks_exact(TILE_ENTRY_BYTES as usize).enumerate() {
        let mut l = [0u32; NMODES];
        // rec comes from chunks_exact(20), so rec[0..20] and ax < NMODES
        // are all in range.
        for ax in 0..NMODES {
            // lint: allow(panic-reach) — l is a fixed NMODES array
            l[ax] = u32::from_le_bytes([
                // lint: allow(panic-reach)
                rec[4 * ax],     // lint: allow(panic-reach)
                rec[4 * ax + 1], // lint: allow(panic-reach)
                rec[4 * ax + 2], // lint: allow(panic-reach)
                rec[4 * ax + 3], // lint: allow(panic-reach)
            ]);
            // lint: allow(panic-reach) — ax < NMODES fixed arrays
            if l[ax] as usize >= span[ax] {
                return Err(BinError::Format(format!(
                    "tile {t} entry {e}: local offset {} outside span {} on axis {ax}",
                    l[ax],    // lint: allow(panic-reach)
                    span[ax]  // lint: allow(panic-reach)
                )));
            }
        }
        let v = f64::from_le_bytes([
            // lint: allow(panic-reach) — rec has exactly 20 bytes
            rec[12], rec[13], rec[14], rec[15], rec[16], rec[17], rec[18],
            rec[19], // lint: allow(panic-reach)
        ]);
        locals.push(l);
        vals.push(v);
    }
    Ok(SourceTile {
        cell: tm.cell.map(|c| c as usize),
        origin,
        locals,
        vals,
    })
}

impl TileStore {
    /// Opens and validates an existing tile-store file. Only the header
    /// and tile table are read into memory.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, BinError> {
        Self::open_with(path, FaultPolicy::none())
    }

    /// [`TileStore::open`] with fault injection: every read during open
    /// and every later [`TileStore::load_tile`] routes through `faults`.
    pub fn open_with<P: AsRef<Path>>(path: P, faults: FaultPolicy) -> Result<Self, BinError> {
        let file = std::fs::File::open(&path)?;
        let total_len = file.metadata()?.len();
        let mut r = FaultRead::new(BufReader::new(file), faults.clone());
        let meta = parse_meta(&mut r, total_len)?;
        Ok(TileStore {
            path: path.as_ref().to_path_buf(),
            meta,
            faults,
        })
    }

    /// Fully validates an in-memory tile-store image: structure plus a
    /// decode of every tile. This is the fuzzer's entry point — it must
    /// return a typed error on any malformation, never panic.
    pub fn validate_bytes(bytes: &[u8]) -> Result<(), BinError> {
        let mut r = bytes;
        let meta = parse_meta(&mut r, bytes.len() as u64)?;
        for t in 0..meta.tiles.len() {
            let tm = &meta.tiles[t]; // t < tiles.len() — lint: allow(panic-reach)
                                     // parse_meta proved payload spans tile [table_end, total_len)
                                     // exactly, so off..off+len is in range — lint: allow(panic-reach)
            let payload = &bytes[tm.off as usize..(tm.off + tm.len) as usize];
            decode_tile(&meta, t, payload)?;
        }
        Ok(())
    }

    /// Serializes `coo` as a tile store over `grid` (original axes) into
    /// any writer. Sequential — no seeking — so it also targets sockets
    /// and in-memory buffers.
    pub fn write_tiles<W: Write>(
        coo: &CooTensor,
        grid: [usize; NMODES],
        writer: W,
    ) -> Result<(), BinError> {
        let dims = coo.dims();
        check_grid(dims, grid)?;
        let bounds = [
            uniform_bounds(dims[0], grid[0]),
            uniform_bounds(dims[1], grid[1]),
            uniform_bounds(dims[2], grid[2]),
        ];
        let mut tagged: Vec<(u64, &Entry)> = coo
            .entries()
            .iter()
            .map(|e| {
                let cell = [
                    cell_of(&bounds[0], e.idx[0] as usize) as u32,
                    cell_of(&bounds[1], e.idx[1] as usize) as u32,
                    cell_of(&bounds[2], e.idx[2] as usize) as u32,
                ];
                (cell_id(cell, grid), e)
            })
            .collect();
        tagged.sort_unstable_by_key(|&(id, e)| (id, e.idx));

        // Tile table: one record per nonempty cell, payloads contiguous.
        let mut tiles: Vec<(u64, u64)> = Vec::new(); // (cell id, nnz)
        for &(id, _) in &tagged {
            match tiles.last_mut() {
                Some((last, n)) if *last == id => *n += 1,
                _ => tiles.push((id, 1)),
            }
        }
        let header = BinHeader {
            version: VERSION_TILES,
            dims: dims.to_vec(),
            nnz: coo.nnz() as u64,
        };
        let mut w = BufWriter::new(writer);
        write_header(&mut w, &header)?;
        for &g in &grid {
            write_u32(&mut w, g as u32)?;
        }
        write_u64(&mut w, tiles.len() as u64)?;
        let mut off =
            header.encoded_len() as u64 + 12 + 8 + tiles.len() as u64 * TABLE_RECORD_BYTES;
        for &(id, nnz) in &tiles {
            let cell = [
                // grid products ≤ cell count ≤ u64 (check_grid) — lint: allow(index-overflow)
                (id / (grid[1] as u64 * grid[2] as u64)) as u32,
                ((id / grid[2] as u64) % grid[1] as u64) as u32,
                (id % grid[2] as u64) as u32,
            ];
            for &c in &cell {
                write_u32(&mut w, c)?;
            }
            // nnz ≤ the in-memory entry count, so nnz·20 fits u64 — lint: allow(index-overflow)
            let len = nnz * TILE_ENTRY_BYTES;
            write_u64(&mut w, nnz)?;
            write_u64(&mut w, off)?;
            write_u64(&mut w, len)?;
            off += len;
        }
        for &(id, e) in &tagged {
            let cell = [
                // grid products ≤ cell count ≤ u64 (check_grid) — lint: allow(index-overflow)
                (id / (grid[1] as u64 * grid[2] as u64)) as usize,
                ((id / grid[2] as u64) % grid[1] as u64) as usize,
                (id % grid[2] as u64) as usize,
            ];
            for ax in 0..NMODES {
                write_u32(&mut w, e.idx[ax] - bounds[ax][cell[ax]] as Idx)?;
            }
            w.write_all(&e.val.to_le_bytes())?;
        }
        w.flush()?;
        Ok(())
    }

    /// Writes `coo` as a tile-store file and opens it (which re-validates
    /// the bytes just written). The write is crash-safe: bytes land in a
    /// same-directory temp file that only a post-`sync_all` rename makes
    /// visible at `path`, so a killed process never leaves a partial
    /// store where `open` can see it.
    pub fn create_from_coo<P: AsRef<Path>>(
        coo: &CooTensor,
        grid: [usize; NMODES],
        path: P,
    ) -> Result<Self, BinError> {
        Self::create_from_coo_with(coo, grid, path, FaultPolicy::none())
    }

    /// [`TileStore::create_from_coo`] with fault injection over every
    /// write, sync, and the committing rename.
    pub fn create_from_coo_with<P: AsRef<Path>>(
        coo: &CooTensor,
        grid: [usize; NMODES],
        path: P,
        faults: FaultPolicy,
    ) -> Result<Self, BinError> {
        let mut out = AtomicFile::create(&path, faults.clone())?;
        Self::write_tiles(coo, grid, &mut out)?;
        out.commit()?;
        Self::open_with(path, faults)
    }

    /// Converts a v1 (flat COO) `.tnsb` file into a tile store at `dst`
    /// in bounded memory: two streaming passes over the source — count
    /// nonzeros per cell, then scatter entries through small per-tile
    /// write buffers — so neither tensor is ever fully resident.
    pub fn build_from_tnsb<P: AsRef<Path>, Q: AsRef<Path>>(
        src: P,
        grid: [usize; NMODES],
        dst: Q,
    ) -> Result<Self, BinError> {
        Self::build_from_tnsb_with(src, grid, dst, FaultPolicy::none())
    }

    /// [`TileStore::build_from_tnsb`] with fault injection. Like
    /// [`TileStore::create_from_coo_with`], the scatter writes target a
    /// temp file and only a post-sync rename publishes `dst`.
    pub fn build_from_tnsb_with<P: AsRef<Path>, Q: AsRef<Path>>(
        src: P,
        grid: [usize; NMODES],
        dst: Q,
        faults: FaultPolicy,
    ) -> Result<Self, BinError> {
        let src = src.as_ref();
        let (header, coords_at) = read_v1_prelude(src)?;
        let dims = [header.dims[0], header.dims[1], header.dims[2]];
        check_grid(dims, grid)?;
        let bounds = [
            uniform_bounds(dims[0], grid[0]),
            uniform_bounds(dims[1], grid[1]),
            uniform_bounds(dims[2], grid[2]),
        ];
        let nnz = header.nnz as usize;
        // The per-cell count/cursor vectors are allocated at this size;
        // refuse grids whose cell count cannot even be addressed.
        let cells = grid[0]
            .checked_mul(grid[1])
            .and_then(|x| x.checked_mul(grid[2]))
            .ok_or_else(|| BinError::Format("tile grid cell count overflows usize".into()))?;

        // Pass 1: per-cell nonzero counts, O(cells) memory.
        let mut counts = vec![0u64; cells];
        {
            let mut f = std::fs::File::open(src)?;
            f.seek(SeekFrom::Start(coords_at))?;
            let mut coords = BufReader::new(f);
            for n in 0..nnz {
                let idx = read_coord3(&mut coords, dims, n)?;
                let cell = [
                    cell_of(&bounds[0], idx[0]) as u32,
                    cell_of(&bounds[1], idx[1]) as u32,
                    cell_of(&bounds[2], idx[2]) as u32,
                ];
                counts[cell_id(cell, grid) as usize] += 1;
            }
        }

        // Table: nonempty cells in id order, contiguous payload offsets.
        let n_tiles = counts.iter().filter(|&&c| c > 0).count() as u64;
        let table_end = n_tiles
            .checked_mul(TABLE_RECORD_BYTES)
            .and_then(|t| t.checked_add(header.encoded_len() as u64 + 12 + 8))
            .ok_or_else(|| BinError::Format("tile table size overflows".into()))?;
        let mut cursor = vec![0u64; cells]; // per-cell write position
        let mut out = AtomicFile::create(dst.as_ref(), faults.clone())?;
        {
            let mut w = BufWriter::new(&mut out);
            write_header(
                &mut w,
                &BinHeader {
                    version: VERSION_TILES,
                    dims: header.dims.clone(),
                    nnz: header.nnz,
                },
            )?;
            for &g in &grid {
                write_u32(&mut w, g as u32)?;
            }
            write_u64(&mut w, n_tiles)?;
            let mut off = table_end;
            for (id, &count) in counts.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let id = id as u64;
                let cell = [
                    // grid products ≤ cell count ≤ u64 (check_grid) — lint: allow(index-overflow)
                    (id / (grid[1] as u64 * grid[2] as u64)) as u32,
                    ((id / grid[2] as u64) % grid[1] as u64) as u32,
                    (id % grid[2] as u64) as u32,
                ];
                for &c in &cell {
                    write_u32(&mut w, c)?;
                }
                let len = count * TILE_ENTRY_BYTES;
                write_u64(&mut w, count)?;
                write_u64(&mut w, off)?;
                write_u64(&mut w, len)?;
                cursor[id as usize] = off;
                off += len;
            }
            w.flush()?;
        }

        // Pass 2: scatter entries to their tiles through small flush
        // buffers — bounded by FLUSH_AT bytes per nonempty tile.
        const FLUSH_AT: usize = 4096;
        let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); cells];
        let mut coords = {
            let mut f = std::fs::File::open(src)?;
            f.seek(SeekFrom::Start(coords_at))?;
            BufReader::new(f)
        };
        let mut vals = {
            let mut f = std::fs::File::open(src)?;
            // nnz coordinates (12 B each) were just streamed in pass 1,
            // so 12·nnz is within the source file length — lint: allow(index-overflow)
            f.seek(SeekFrom::Start(coords_at + 12 * nnz as u64))?;
            BufReader::new(f)
        };
        let flush = |out: &mut AtomicFile,
                     id: usize,
                     buf: &mut Vec<u8>,
                     cursor: &mut [u64]|
         -> Result<(), BinError> {
            out.seek(SeekFrom::Start(cursor[id]))?;
            out.write_all(buf)?;
            cursor[id] += buf.len() as u64;
            buf.clear();
            Ok(())
        };
        for n in 0..nnz {
            let idx = read_coord3(&mut coords, dims, n)?;
            let mut v = [0u8; 8];
            vals.read_exact(&mut v)?;
            let cell = [
                cell_of(&bounds[0], idx[0]),
                cell_of(&bounds[1], idx[1]),
                cell_of(&bounds[2], idx[2]),
            ];
            let id = cell_id([cell[0] as u32, cell[1] as u32, cell[2] as u32], grid) as usize;
            let buf = &mut bufs[id];
            for ax in 0..NMODES {
                buf.extend_from_slice(&((idx[ax] - bounds[ax][cell[ax]]) as u32).to_le_bytes());
            }
            buf.extend_from_slice(&v);
            if buf.len() >= FLUSH_AT {
                flush(&mut out, id, buf, &mut cursor)?;
            }
        }
        for (id, buf) in bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                flush(&mut out, id, buf, &mut cursor)?;
            }
        }
        out.flush()?;
        out.commit()?;
        Self::open_with(dst, faults)
    }

    /// Tensor dimensions (original mode order).
    pub fn dims(&self) -> [usize; NMODES] {
        self.meta.dims
    }

    /// Tile counts per original axis.
    pub fn grid(&self) -> [usize; NMODES] {
        self.meta.grid
    }

    /// Total nonzeros across all tiles.
    pub fn nnz(&self) -> usize {
        self.meta.nnz as usize
    }

    /// Number of nonempty tiles.
    pub fn n_tiles(&self) -> usize {
        self.meta.tiles.len()
    }

    /// The `i`-th tile's table record.
    pub fn tile(&self, i: usize) -> TileMeta {
        self.meta.tiles[i]
    }

    /// Tile boundaries along original axis `ax` (length `grid[ax] + 1`).
    pub fn bounds(&self, ax: usize) -> &[usize] {
        &self.meta.bounds[ax]
    }

    /// Payload bytes of the largest tile — what a double-buffered reader
    /// must be able to hold twice.
    pub fn max_tile_bytes(&self) -> u64 {
        self.meta.tiles.iter().map(|t| t.len).max().unwrap_or(0)
    }

    /// The file this store reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads and decodes one tile from disk.
    pub fn load_tile(&self, i: usize) -> Result<SourceTile, BinError> {
        let tm = *self.meta.tiles.get(i).ok_or_else(|| {
            BinError::Format(format!(
                "tile index {i} out of range ({} tiles)",
                self.meta.tiles.len()
            ))
        })?;
        let mut f = std::fs::File::open(&self.path)?;
        f.seek(SeekFrom::Start(tm.off))?;
        let mut payload = vec![0u8; tm.len as usize];
        FaultRead::new(f, self.faults.clone()).read_exact(&mut payload)?;
        decode_tile(&self.meta, i, &payload)
    }

    /// Reassembles the whole tensor (one tile at a time). This is the
    /// spill tier's reload path and the round-trip test hook — it holds
    /// the full entry list, so only call it when the tensor is meant to
    /// become resident again.
    pub fn to_coo(&self) -> Result<CooTensor, BinError> {
        let mut entries = Vec::with_capacity(self.nnz());
        for i in 0..self.n_tiles() {
            let tile = self.load_tile(i)?;
            for (l, &v) in tile.locals.iter().zip(&tile.vals) {
                entries.push(Entry {
                    idx: [
                        (tile.origin[0] + l[0] as usize) as Idx,
                        (tile.origin[1] + l[1] as usize) as Idx,
                        (tile.origin[2] + l[2] as usize) as Idx,
                    ],
                    val: v,
                });
            }
        }
        // The bytes came from disk: a store that passes tile-framing
        // validation can still carry a corrupted payload (e.g. a bit flip
        // turning a value non-finite), so this must stay a typed error,
        // never the panicking constructor.
        CooTensor::try_from_entries(self.dims(), entries)
            .map_err(|e| BinError::Format(format!("decoded store is not a valid tensor: {e}")))
    }
}

/// Reads a v1 `.tnsb` header and returns it with the byte offset of the
/// coordinate section.
fn read_v1_prelude(path: &Path) -> Result<(BinHeader, u64), BinError> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let h = read_header(&mut r)?;
    if h.version != VERSION_COO {
        return Err(BinError::Format(format!(
            "expected a v1 COO .tnsb file, found version {}",
            h.version
        )));
    }
    if h.dims.len() != NMODES {
        return Err(BinError::Format(format!(
            "tile store requires a 3-mode tensor, file has order {}",
            h.dims.len()
        )));
    }
    let at = h.encoded_len() as u64;
    Ok((h, at))
}

/// Reads one 3-mode coordinate triple, validating range.
fn read_coord3<R: Read>(
    r: &mut R,
    dims: [usize; NMODES],
    n: usize,
) -> Result<[usize; NMODES], BinError> {
    let mut idx = [0usize; NMODES];
    for (ax, i) in idx.iter_mut().enumerate() {
        let c = read_u32(r)? as usize;
        if c >= dims[ax] {
            return Err(BinError::Format(format!(
                "entry {n}: coordinate {c} out of range for mode {ax}"
            )));
        }
        *i = c;
    }
    Ok(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::uniform_tensor;
    use crate::io_bin::write_bin_file;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tenblock_tiles_{}_{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn store_round_trips_through_tiles() {
        let t = uniform_tensor([40, 30, 20], 900, 3);
        let dir = tmpdir("roundtrip");
        let store = TileStore::create_from_coo(&t, [4, 3, 2], dir.join("t.tnsb")).unwrap();
        assert_eq!(store.dims(), t.dims());
        assert_eq!(store.nnz(), t.nnz());
        assert!(store.n_tiles() >= 1);
        assert_eq!(store.to_coo().unwrap(), t);
        // Tile cells are sorted and nnz sums to the total.
        let sum: u64 = (0..store.n_tiles()).map(|i| store.tile(i).nnz).sum();
        assert_eq!(sum, t.nnz() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_from_v1_matches_in_memory_build() {
        let t = uniform_tensor([64, 48, 32], 2_000, 11);
        let dir = tmpdir("fromv1");
        let v1 = dir.join("src.tnsb");
        write_bin_file(&t, &v1).unwrap();
        let streamed = TileStore::build_from_tnsb(&v1, [3, 2, 2], dir.join("a.tnsb")).unwrap();
        let direct = TileStore::create_from_coo(&t, [3, 2, 2], dir.join("b.tnsb")).unwrap();
        assert_eq!(streamed.n_tiles(), direct.n_tiles());
        for i in 0..streamed.n_tiles() {
            let (a, b) = (streamed.tile(i), direct.tile(i));
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.nnz, b.nnz);
        }
        assert_eq!(streamed.to_coo().unwrap(), t);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_tensor_has_no_tiles() {
        let t = CooTensor::empty([5, 5, 5]);
        let dir = tmpdir("empty");
        let store = TileStore::create_from_coo(&t, [2, 2, 2], dir.join("e.tnsb")).unwrap();
        assert_eq!(store.n_tiles(), 0);
        assert_eq!(store.to_coo().unwrap(), t);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_bytes_accepts_well_formed_and_rejects_mutants() {
        let t = uniform_tensor([16, 16, 16], 200, 5);
        let mut bytes = Vec::new();
        TileStore::write_tiles(&t, [2, 2, 2], &mut bytes).unwrap();
        TileStore::validate_bytes(&bytes).unwrap();

        // Truncated tile table.
        assert!(matches!(
            TileStore::validate_bytes(&bytes[..60]),
            Err(BinError::Format(_)) | Err(BinError::Io(_))
        ));
        // Lying length: corrupt the first tile's nnz field.
        let mut lying = bytes.clone();
        let nnz_at = 4 + 4 + 4 + 3 * 8 + 8 + 12 + 8 + 12; // first record's nnz
        lying[nnz_at] ^= 0xff;
        assert!(TileStore::validate_bytes(&lying).is_err());
        // Trailing garbage breaks the extent tiling.
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(&[0u8; 7]);
        assert!(matches!(
            TileStore::validate_bytes(&trailing),
            Err(BinError::Format(_))
        ));
        // A v1 file is not a tile store.
        let mut v1 = Vec::new();
        crate::io_bin::write_bin(&t, &mut v1).unwrap();
        assert!(matches!(
            TileStore::validate_bytes(&v1),
            Err(BinError::Format(_))
        ));
    }

    #[test]
    fn tile_locals_stay_inside_spans() {
        let t = uniform_tensor([33, 17, 9], 400, 13);
        let dir = tmpdir("spans");
        let store = TileStore::create_from_coo(&t, [5, 3, 2], dir.join("t.tnsb")).unwrap();
        for i in 0..store.n_tiles() {
            let tile = store.load_tile(i).unwrap();
            for ax in 0..NMODES {
                let c = tile.cell[ax];
                let span = store.bounds(ax)[c + 1] - store.bounds(ax)[c];
                assert!(tile.locals.iter().all(|l| (l[ax] as usize) < span));
                assert_eq!(tile.origin[ax], store.bounds(ax)[c]);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
