//! FROSTT `.tns` text format I/O.
//!
//! The FROSTT repository (Smith, Choi, et al., reference [29] of the paper)
//! distributes sparse tensors as whitespace-separated text: one nonzero per
//! line, `N` 1-based coordinates followed by the value. Comment lines start
//! with `#`. This reader accepts exactly 3-mode files, matching the rest of
//! the crate; dimensions are inferred as the per-mode coordinate maxima
//! unless given explicitly.

use crate::coo::{CooTensor, Entry};
use crate::{Idx, NMODES};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced by the `.tns` reader.
#[derive(Debug)]
pub enum TnsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse { line: usize, msg: String },
}

impl std::fmt::Display for TnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TnsError::Io(e) => write!(f, "I/O error: {e}"),
            TnsError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TnsError {}

impl From<std::io::Error> for TnsError {
    fn from(e: std::io::Error) -> Self {
        TnsError::Io(e)
    }
}

/// Reads a 3-mode tensor from `.tns` text.
///
/// Coordinates in the file are 1-based (FROSTT convention) and converted to
/// 0-based. Dimensions are the per-mode maxima of the coordinates.
///
/// Input is validated, never trusted: zero or `Idx`-overflowing
/// coordinates, non-finite values (`nan`/`inf`), missing fields, and
/// trailing fields are all rejected with a [`TnsError::Parse`] naming the
/// line. Lines repeating a coordinate triple are coalesced by summing
/// their values (the [`CooTensor`] duplicate semantics).
pub fn read_tns<R: Read>(reader: R) -> Result<CooTensor, TnsError> {
    let reader = BufReader::new(reader);
    let mut entries: Vec<Entry> = Vec::new();
    let mut dims = [0usize; NMODES];
    for (ln, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = ln + 1;
        let s = line.trim();
        if s.is_empty() || s.starts_with('#') {
            continue;
        }
        let mut it = s.split_ascii_whitespace();
        let mut idx = [0 as Idx; NMODES];
        for (m, slot) in idx.iter_mut().enumerate() {
            let tok = it.next().ok_or_else(|| TnsError::Parse {
                line: line_no,
                msg: format!(
                    "expected {} coordinates + value, found fewer fields",
                    NMODES
                ),
            })?;
            let c: u64 = tok.parse().map_err(|_| TnsError::Parse {
                line: line_no,
                msg: format!("invalid coordinate `{tok}`"),
            })?;
            if c == 0 {
                return Err(TnsError::Parse {
                    line: line_no,
                    msg: "coordinates are 1-based; found 0".into(),
                });
            }
            // A plain `as Idx` cast here would silently truncate huge
            // coordinates (wrapping them onto valid slices); reject instead.
            if c - 1 > Idx::MAX as u64 {
                return Err(TnsError::Parse {
                    line: line_no,
                    msg: format!(
                        "coordinate {c} exceeds the index limit {}",
                        Idx::MAX as u64 + 1
                    ),
                });
            }
            *slot = (c - 1) as Idx;
            if let Some(d) = dims.get_mut(m) {
                *d = (*d).max(c as usize);
            }
        }
        let vtok = it.next().ok_or_else(|| TnsError::Parse {
            line: line_no,
            msg: "missing value field".into(),
        })?;
        let val: f64 = vtok.parse().map_err(|_| TnsError::Parse {
            line: line_no,
            msg: format!("invalid value `{vtok}`"),
        })?;
        if !val.is_finite() {
            return Err(TnsError::Parse {
                line: line_no,
                msg: format!("non-finite value `{vtok}` (kernels require finite data)"),
            });
        }
        if it.next().is_some() {
            return Err(TnsError::Parse {
                line: line_no,
                msg: "trailing fields after value (only 3-mode tensors are supported)".into(),
            });
        }
        entries.push(Entry { idx, val });
    }
    // Coordinates were bounds-checked against the running maxima above and
    // values are finite, so construction cannot fail — but route through the
    // fallible constructor anyway so a future invariant change surfaces as a
    // parse error, not a panic on user input.
    CooTensor::try_from_entries(dims, entries).map_err(|e| TnsError::Parse {
        line: 0,
        msg: e.to_string(),
    })
}

/// Reads a `.tns` file from disk.
pub fn read_tns_file<P: AsRef<Path>>(path: P) -> Result<CooTensor, TnsError> {
    read_tns(std::fs::File::open(path)?)
}

/// Writes a tensor as `.tns` text (1-based coordinates).
pub fn write_tns<W: Write>(tensor: &CooTensor, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for e in tensor.entries() {
        writeln!(
            w,
            "{} {} {} {}",
            e.idx[0] as u64 + 1,
            e.idx[1] as u64 + 1,
            e.idx[2] as u64 + 1,
            e.val
        )?;
    }
    w.flush()
}

/// Writes a `.tns` file to disk.
pub fn write_tns_file<P: AsRef<Path>>(tensor: &CooTensor, path: P) -> std::io::Result<()> {
    write_tns(tensor, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_frostt_text() {
        let text = "# a comment\n1 1 1 5.0\n\n2 3 1 -2.5\n";
        let t = read_tns(text.as_bytes()).unwrap();
        assert_eq!(t.dims(), [2, 3, 1]);
        assert_eq!(t.nnz(), 2);
        let e = t.entries();
        assert_eq!(e[0].idx, [0, 0, 0]);
        assert_eq!(e[0].val, 5.0);
        assert_eq!(e[1].idx, [1, 2, 0]);
        assert_eq!(e[1].val, -2.5);
    }

    #[test]
    fn roundtrip_through_text() {
        let t = CooTensor::from_triples(
            [4, 2, 3],
            &[0, 3, 1],
            &[1, 0, 1],
            &[2, 0, 1],
            &[1.5, 2.5, -3.0],
        );
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let back = read_tns(buf.as_slice()).unwrap();
        assert_eq!(back.nnz(), t.nnz());
        assert_eq!(back.entries(), t.entries());
    }

    #[test]
    fn rejects_zero_based() {
        let err = read_tns("0 1 1 2.0".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_short_lines_and_bad_values() {
        assert!(read_tns("1 1 1".as_bytes()).is_err());
        assert!(read_tns("1 1 1 abc".as_bytes()).is_err());
        assert!(read_tns("1 1 1 1 1".as_bytes()).is_err());
    }

    #[test]
    fn rejects_non_finite_values_naming_the_line() {
        for bad in ["nan", "NaN", "inf", "-inf", "infinity"] {
            let text = format!("1 1 1 2.0\n2 2 2 {bad}\n");
            let err = read_tns(text.as_bytes()).unwrap_err();
            match err {
                TnsError::Parse { line, msg } => {
                    assert_eq!(line, 2, "{bad}");
                    assert!(msg.contains("non-finite"), "{msg}");
                }
                other => panic!("expected Parse, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_coordinates_overflowing_idx() {
        // 2^32 + 1 (1-based) would wrap to slice 0 under a silent cast.
        let text = format!("{} 1 1 2.0\n", (1u64 << 32) + 1);
        let err = read_tns(text.as_bytes()).unwrap_err();
        match err {
            TnsError::Parse { line: 1, msg } => {
                assert!(msg.contains("index limit"), "{msg}")
            }
            other => panic!("expected Parse at line 1, got {other:?}"),
        }
        // The largest representable coordinate is fine.
        let ok = format!("{} 1 1 2.0\n", 1u64 << 32);
        let t = read_tns(ok.as_bytes()).unwrap();
        assert_eq!(t.dims()[0], 1usize << 32);
        assert_eq!(t.entries()[0].idx[0], u32::MAX);
    }

    #[test]
    fn duplicate_coordinates_coalesce_by_summing() {
        let text = "2 1 1 1.5\n2 1 1 2.5\n2 1 1 -1.0\n1 1 1 4.0\n";
        let t = read_tns(text.as_bytes()).unwrap();
        assert_eq!(t.nnz(), 2);
        let merged = t
            .entries()
            .iter()
            .find(|e| e.idx == [1, 0, 0])
            .expect("coalesced entry present");
        assert_eq!(merged.val, 3.0);
    }

    #[test]
    fn file_roundtrip() {
        let t = CooTensor::from_triples([2, 2, 2], &[0, 1], &[0, 1], &[0, 1], &[1.0, 2.0]);
        let dir = std::env::temp_dir().join("tenblock_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tns");
        write_tns_file(&t, &path).unwrap();
        let back = read_tns_file(&path).unwrap();
        assert_eq!(back.entries(), t.entries());
    }
}
