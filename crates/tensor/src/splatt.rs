//! The SPLATT compressed-fiber format (Figure 1b of the paper).
//!
//! Nonzeros are grouped into fibers. In the kernel orientation given by a
//! mode permutation `perm`, a *slice* is a fixed value of mode `perm[0]`, a
//! *fiber* within a slice is a fixed value of mode `perm[2]` (the paper's
//! `k_index`), and nonzeros inside a fiber vary along mode `perm[1]` (the
//! paper's `j_index`). This matches the paper's mode-1 layout where fibers
//! are mode-2 fibers.

use crate::coo::{is_permutation, CooTensor, Entry};
use crate::{Idx, NMODES};

/// A 3-mode sparse tensor in the SPLATT format, oriented for the MTTKRP of
/// mode `perm[0]`.
///
/// Structure (names follow Figure 1b):
///
/// ```text
/// slice i (local):  fibers  i_ptr[i] .. i_ptr[i+1]
/// fiber f:          k coordinate fiber_kid[f],
///                   nonzeros fiber_ptr[f] .. fiber_ptr[f+1]
/// nonzero n:        j coordinate j_idx[n], value vals[n]
/// ```
///
/// To support multi-dimensional blocking, a `SplattTensor` may cover only a
/// contiguous *slice range* `[slice_begin, slice_begin + n_slices)` of the
/// global slice mode; `i_ptr` is indexed by the local slice offset. For an
/// unblocked tensor `slice_begin == 0` and `n_slices == dims[perm[0]]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SplattTensor {
    /// Global dimensions in **original** mode order.
    dims: [usize; NMODES],
    /// Orientation: kernel axis -> original mode. `perm[0]` is the slice
    /// (output) mode, `perm[1]` the within-fiber mode, `perm[2]` the fiber
    /// mode.
    perm: [usize; NMODES],
    /// First global slice covered by this (possibly blocked) tensor.
    slice_begin: Idx,
    /// When `Some`, the tensor is *slice-compressed*: only non-empty slices
    /// are stored and `slice_ids[s]` is the global slice of local slice `s`
    /// (then `slice_begin` is unused). Used by blocked sub-tensors whose
    /// slice ranges are mostly empty.
    slice_ids: Option<Vec<Idx>>,
    /// Fiber ranges per local slice: `n_slices + 1` entries.
    i_ptr: Vec<usize>,
    /// Global `perm[2]` coordinate of each fiber.
    fiber_kid: Vec<Idx>,
    /// Nonzero ranges per fiber: `F + 1` entries.
    fiber_ptr: Vec<usize>,
    /// Global `perm[1]` coordinate of each nonzero.
    j_idx: Vec<Idx>,
    /// Nonzero values, fiber by fiber.
    vals: Vec<f64>,
}

impl SplattTensor {
    /// Builds the SPLATT representation of `coo` oriented by `perm`,
    /// covering all slices of mode `perm[0]`.
    pub fn from_coo(coo: &CooTensor, perm: [usize; NMODES]) -> Self {
        let n_slices = coo.dims()[perm[0]];
        Self::from_entries_ranged(coo.dims(), perm, coo.entries().to_vec(), 0, n_slices)
    }

    /// Builds the SPLATT representation for the mode-`m` MTTKRP using the
    /// cyclic orientation `[m, m+1, m+2] (mod 3)`.
    pub fn for_mode(coo: &CooTensor, m: usize) -> Self {
        Self::from_coo(coo, crate::coo::perm_for_mode(m))
    }

    /// Builds a (possibly blocked) SPLATT tensor from raw entries covering
    /// global slices `[slice_begin, slice_begin + n_slices)` of mode
    /// `perm[0]`. Entries may arrive in any order; they are sorted here.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation or an entry's slice coordinate
    /// falls outside the covered range.
    pub fn from_entries_ranged(
        dims: [usize; NMODES],
        perm: [usize; NMODES],
        mut entries: Vec<Entry>,
        slice_begin: usize,
        n_slices: usize,
    ) -> Self {
        assert!(is_permutation(perm), "invalid mode permutation {perm:?}");
        assert!(slice_begin + n_slices <= dims[perm[0]]);
        entries.sort_unstable_by_key(|e| (e.idx[perm[0]], e.idx[perm[2]], e.idx[perm[1]]));

        let nnz = entries.len();
        let mut i_ptr = Vec::with_capacity(n_slices + 1);
        let mut fiber_kid: Vec<Idx> = Vec::new();
        let mut fiber_ptr: Vec<usize> = vec![0];
        let mut j_idx = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);

        i_ptr.push(0);
        let mut cur_slice = slice_begin; // next slice whose i_ptr entry is open
        let mut last: Option<(Idx, Idx)> = None; // (slice, fiber kid) of open fiber
        for e in &entries {
            let s = e.idx[perm[0]] as usize;
            assert!(
                s >= slice_begin && s < slice_begin + n_slices,
                "entry slice {s} outside block range [{slice_begin}, {})",
                slice_begin + n_slices
            );
            let kid = e.idx[perm[2]];
            if last != Some((e.idx[perm[0]], kid)) {
                // close previous fiber, open a new one
                if !fiber_kid.is_empty() {
                    fiber_ptr.push(j_idx.len());
                }
                // advance i_ptr for all slices up to and including s
                while cur_slice <= s {
                    if cur_slice > slice_begin {
                        i_ptr.push(fiber_kid.len());
                    }
                    cur_slice += 1;
                }
                // the slice s's range is open; record fiber
                fiber_kid.push(kid);
                last = Some((e.idx[perm[0]], kid));
            }
            j_idx.push(e.idx[perm[1]]);
            vals.push(e.val);
        }
        if !fiber_kid.is_empty() {
            fiber_ptr.push(j_idx.len());
        }
        // close remaining slices
        while i_ptr.len() < n_slices + 1 {
            i_ptr.push(fiber_kid.len());
        }
        debug_assert_eq!(fiber_ptr.len(), fiber_kid.len() + 1);
        debug_assert_eq!(*fiber_ptr.last().unwrap(), nnz); // fiber_ptr starts at [0], never empty — lint: allow(panic-reach)

        SplattTensor {
            dims,
            perm,
            slice_begin: slice_begin as Idx,
            slice_ids: None,
            i_ptr,
            fiber_kid,
            fiber_ptr,
            j_idx,
            vals,
        }
    }

    /// Builds a *slice-compressed* SPLATT tensor: only slices that contain
    /// at least one nonzero get an `i_ptr` entry, and their global indices
    /// are recorded in a side array. Memory is then proportional to the
    /// number of non-empty slices rather than the mode length — essential
    /// for the multi-dimensional blocking grid, where each block covers a
    /// slice range that is mostly empty.
    pub fn from_entries_compressed(
        dims: [usize; NMODES],
        perm: [usize; NMODES],
        mut entries: Vec<Entry>,
    ) -> Self {
        assert!(is_permutation(perm), "invalid mode permutation {perm:?}");
        entries.sort_unstable_by_key(|e| (e.idx[perm[0]], e.idx[perm[2]], e.idx[perm[1]]));

        let nnz = entries.len();
        let mut slice_ids: Vec<Idx> = Vec::new();
        let mut i_ptr: Vec<usize> = vec![0];
        let mut fiber_kid: Vec<Idx> = Vec::new();
        let mut fiber_ptr: Vec<usize> = vec![0];
        let mut j_idx = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);

        let mut last_fiber: Option<(Idx, Idx)> = None;
        for e in &entries {
            let s = e.idx[perm[0]];
            assert!((s as usize) < dims[perm[0]], "slice {s} out of range");
            let kid = e.idx[perm[2]];
            if last_fiber != Some((s, kid)) {
                if !fiber_kid.is_empty() {
                    fiber_ptr.push(j_idx.len());
                }
                if slice_ids.last() != Some(&s) {
                    if !slice_ids.is_empty() {
                        i_ptr.push(fiber_kid.len());
                    }
                    slice_ids.push(s);
                }
                fiber_kid.push(kid);
                last_fiber = Some((s, kid));
            }
            j_idx.push(e.idx[perm[1]]);
            vals.push(e.val);
        }
        if !fiber_kid.is_empty() {
            fiber_ptr.push(j_idx.len());
        }
        i_ptr.push(fiber_kid.len());
        if slice_ids.is_empty() {
            // no nonzeros: single empty sentinel range already in i_ptr
            i_ptr = vec![0];
        }
        debug_assert_eq!(i_ptr.len(), slice_ids.len() + 1);

        SplattTensor {
            dims,
            perm,
            slice_begin: 0,
            slice_ids: Some(slice_ids),
            i_ptr,
            fiber_kid,
            fiber_ptr,
            j_idx,
            vals,
        }
    }

    /// Global dimensions in original mode order.
    pub fn dims(&self) -> [usize; NMODES] {
        self.dims
    }

    /// The orientation permutation (kernel axis -> original mode).
    pub fn perm(&self) -> [usize; NMODES] {
        self.perm
    }

    /// First global slice covered (dense slice-range tensors only; for
    /// compressed tensors this is 0 and [`Self::slice_global`] must be
    /// used).
    pub fn slice_begin(&self) -> usize {
        self.slice_begin as usize
    }

    /// Global slice index of local slice `s`.
    #[inline]
    pub fn slice_global(&self, s: usize) -> usize {
        match &self.slice_ids {
            Some(ids) => ids[s] as usize,
            None => self.slice_begin as usize + s,
        }
    }

    /// True if this tensor stores only non-empty slices.
    pub fn is_slice_compressed(&self) -> bool {
        self.slice_ids.is_some()
    }

    /// Number of local slices covered (including empty ones).
    pub fn n_slices(&self) -> usize {
        self.i_ptr.len() - 1
    }

    /// Number of non-empty fibers `F`.
    pub fn n_fibers(&self) -> usize {
        self.fiber_kid.len()
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Fiber index range of local slice `s`.
    #[inline]
    pub fn slice_fibers(&self, s: usize) -> std::ops::Range<usize> {
        self.i_ptr[s]..self.i_ptr[s + 1]
    }

    /// Global `perm[2]` coordinate of fiber `f`.
    #[inline]
    pub fn fiber_kid(&self, f: usize) -> Idx {
        self.fiber_kid[f]
    }

    /// Nonzero index range of fiber `f`.
    #[inline]
    pub fn fiber_nnz(&self, f: usize) -> std::ops::Range<usize> {
        self.fiber_ptr[f]..self.fiber_ptr[f + 1]
    }

    /// Raw structure access for kernels: `(i_ptr, fiber_kid, fiber_ptr,
    /// j_idx, vals)`.
    #[allow(clippy::type_complexity)]
    pub fn raw(&self) -> (&[usize], &[Idx], &[usize], &[Idx], &[f64]) {
        (
            &self.i_ptr,
            &self.fiber_kid,
            &self.fiber_ptr,
            &self.j_idx,
            &self.vals,
        )
    }

    /// Reconstructs the entries in **original** mode order. Used by tests
    /// and format round-trips.
    pub fn to_entries(&self) -> Vec<Entry> {
        let mut out = Vec::with_capacity(self.nnz());
        for s in 0..self.n_slices() {
            let gi = self.slice_global(s);
            for f in self.slice_fibers(s) {
                let kid = self.fiber_kid[f];
                for n in self.fiber_nnz(f) {
                    let mut idx = [0 as Idx; NMODES];
                    idx[self.perm[0]] = gi as Idx;
                    idx[self.perm[1]] = self.j_idx[n];
                    idx[self.perm[2]] = kid;
                    out.push(Entry {
                        idx,
                        val: self.vals[n],
                    });
                }
            }
        }
        out
    }

    /// Memory footprint per the paper's model: `16 + 8*I + 16*F + 16*nnz`
    /// bytes (64-bit indices/values assumed by the paper).
    pub fn paper_bytes(&self) -> usize {
        16 + 8 * self.n_slices() + 16 * self.n_fibers() + 16 * self.nnz()
    }

    /// Actual bytes used by this implementation's arrays.
    pub fn actual_bytes(&self) -> usize {
        self.i_ptr.len() * 8
            + self.fiber_kid.len() * 4
            + self.fiber_ptr.len() * 8
            + self.j_idx.len() * 4
            + self.vals.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::MODE1_PERM;

    fn fig1_tensor() -> CooTensor {
        CooTensor::from_triples(
            [3, 3, 3],
            &[0, 0, 0, 1, 1, 1, 2],
            &[0, 1, 1, 0, 1, 2, 0],
            &[0, 1, 2, 2, 1, 2, 0],
            &[5.0, 3.0, 1.0, 2.0, 9.0, 7.0, 9.0],
        )
    }

    #[test]
    fn matches_figure_1b() {
        let t = SplattTensor::from_coo(&fig1_tensor(), MODE1_PERM);
        assert_eq!(t.n_slices(), 3);
        assert_eq!(t.n_fibers(), 6);
        assert_eq!(t.nnz(), 7);
        // Row 1 (slice 0) has fibers with k = 0, 1, 2 (paper: 1, 2, 3).
        let fibers: Vec<Idx> = t.slice_fibers(0).map(|f| t.fiber_kid(f)).collect();
        assert_eq!(fibers, vec![0, 1, 2]);
        // Slice 1 fibers: k = 1, 2 with the k=2 fiber holding j=0 and j=2.
        let fibers1: Vec<Idx> = t.slice_fibers(1).map(|f| t.fiber_kid(f)).collect();
        assert_eq!(fibers1, vec![1, 2]);
        let f_k2 = t.slice_fibers(1).find(|&f| t.fiber_kid(f) == 2).unwrap();
        let (_, _, _, j_idx, vals) = t.raw();
        let r = t.fiber_nnz(f_k2);
        assert_eq!(&j_idx[r.clone()], &[0, 2]);
        assert_eq!(&vals[r], &[2.0, 7.0]);
    }

    #[test]
    fn roundtrip_all_modes() {
        let coo = fig1_tensor();
        for m in 0..3 {
            let t = SplattTensor::for_mode(&coo, m);
            let mut back = t.to_entries();
            back.sort_unstable_by_key(|e| e.idx);
            let mut orig = coo.entries().to_vec();
            orig.sort_unstable_by_key(|e| e.idx);
            assert_eq!(back, orig, "mode {m} round-trip failed");
        }
    }

    #[test]
    fn empty_slices_are_handled() {
        // slices 0 and 3 empty
        let coo = CooTensor::from_triples([5, 2, 2], &[1, 4], &[0, 1], &[1, 0], &[1.0, 2.0]);
        let t = SplattTensor::from_coo(&coo, MODE1_PERM);
        assert_eq!(t.n_slices(), 5);
        assert_eq!(t.slice_fibers(0).len(), 0);
        assert_eq!(t.slice_fibers(1).len(), 1);
        assert_eq!(t.slice_fibers(2).len(), 0);
        assert_eq!(t.slice_fibers(3).len(), 0);
        assert_eq!(t.slice_fibers(4).len(), 1);
    }

    #[test]
    fn ranged_block_covers_subrange() {
        let coo = fig1_tensor();
        // block covering slices [1, 3)
        let entries: Vec<Entry> = coo
            .entries()
            .iter()
            .copied()
            .filter(|e| e.idx[0] >= 1)
            .collect();
        let t = SplattTensor::from_entries_ranged([3, 3, 3], MODE1_PERM, entries, 1, 2);
        assert_eq!(t.slice_begin(), 1);
        assert_eq!(t.n_slices(), 2);
        assert_eq!(t.nnz(), 4);
        let back = t.to_entries();
        assert!(back.iter().all(|e| e.idx[0] >= 1));
    }

    #[test]
    fn empty_tensor_builds() {
        let coo = CooTensor::empty([4, 4, 4]);
        let t = SplattTensor::from_coo(&coo, MODE1_PERM);
        assert_eq!(t.n_slices(), 4);
        assert_eq!(t.n_fibers(), 0);
        assert_eq!(t.nnz(), 0);
        assert!(t.to_entries().is_empty());
    }

    #[test]
    fn compressed_roundtrip_and_slice_ids() {
        let coo = CooTensor::from_triples(
            [100, 4, 4],
            &[3, 3, 97, 50],
            &[0, 1, 2, 3],
            &[1, 1, 0, 2],
            &[1.0, 2.0, 3.0, 4.0],
        );
        let t =
            SplattTensor::from_entries_compressed(coo.dims(), MODE1_PERM, coo.entries().to_vec());
        assert!(t.is_slice_compressed());
        assert_eq!(t.n_slices(), 3); // slices 3, 50, 97 only
        assert_eq!(t.slice_global(0), 3);
        assert_eq!(t.slice_global(1), 50);
        assert_eq!(t.slice_global(2), 97);
        let mut back = t.to_entries();
        back.sort_unstable_by_key(|e| e.idx);
        assert_eq!(back, coo.entries().to_vec());
    }

    #[test]
    fn compressed_empty_tensor() {
        let t = SplattTensor::from_entries_compressed([5, 5, 5], MODE1_PERM, vec![]);
        assert_eq!(t.n_slices(), 0);
        assert_eq!(t.nnz(), 0);
        assert!(t.to_entries().is_empty());
    }

    #[test]
    fn compressed_equals_ranged_semantics() {
        let coo = fig1_tensor();
        let dense = SplattTensor::from_coo(&coo, MODE1_PERM);
        let comp =
            SplattTensor::from_entries_compressed(coo.dims(), MODE1_PERM, coo.entries().to_vec());
        let mut a = dense.to_entries();
        let mut b = comp.to_entries();
        a.sort_unstable_by_key(|e| e.idx);
        b.sort_unstable_by_key(|e| e.idx);
        assert_eq!(a, b);
        assert_eq!(dense.n_fibers(), comp.n_fibers());
    }

    #[test]
    fn memory_accounting() {
        let t = SplattTensor::from_coo(&fig1_tensor(), MODE1_PERM);
        // paper model: 16 + 8*3 + 16*6 + 16*7 = 248
        assert_eq!(t.paper_bytes(), 248);
        assert!(t.actual_bytes() > 0);
    }
}
