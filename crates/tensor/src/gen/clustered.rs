//! Clustered ("real-world-like") tensor generation.
//!
//! Section VI-C of the paper attributes the larger blocking speedups on real
//! data (3.54x vs 2.02x) to "nice dense sub-structures" absent from random
//! synthetic data. This generator plants exactly that structure: a set of
//! random axis-aligned sub-boxes, each filled to a target density, over a
//! thin uniform background. The resulting tensors are the stand-ins for the
//! Netflix / NELL-2 / Reddit / Amazon rows of Table II.

use crate::coo::{CooTensor, Entry};
use crate::{Idx, NMODES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`clustered_tensor`].
#[derive(Debug, Clone)]
pub struct ClusteredConfig {
    /// Tensor shape.
    pub dims: [usize; NMODES],
    /// Target number of nonzeros (approximate: duplicates are merged).
    pub nnz: usize,
    /// Number of planted dense clusters.
    pub n_clusters: usize,
    /// Fraction of nonzeros placed inside clusters (rest is uniform
    /// background noise). `1.0` means fully clustered.
    pub cluster_frac: f64,
    /// Side length of each cluster box, as a fraction of the mode length.
    pub box_frac: f64,
}

impl ClusteredConfig {
    /// Defaults matching the "real data" regime: 64 clusters holding 80% of
    /// the nonzeros in boxes spanning 2% of each mode.
    pub fn new(dims: [usize; NMODES], nnz: usize) -> Self {
        ClusteredConfig {
            dims,
            nnz,
            n_clusters: 64,
            cluster_frac: 0.8,
            box_frac: 0.02,
        }
    }
}

/// Generates a clustered sparse tensor, deterministically from `seed`.
/// Values are positive counts (1 + extra hits), like rating/count data.
pub fn clustered_tensor(cfg: &ClusteredConfig, seed: u64) -> CooTensor {
    assert!(cfg.n_clusters > 0, "need at least one cluster");
    assert!(
        (0.0..=1.0).contains(&cfg.cluster_frac),
        "cluster_frac in [0,1]"
    );
    assert!(
        cfg.box_frac > 0.0 && cfg.box_frac <= 1.0,
        "box_frac in (0,1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // Plant cluster boxes: per mode, an origin and a side length.
    struct ClusterBox {
        lo: [usize; NMODES],
        side: [usize; NMODES],
    }
    let boxes: Vec<ClusterBox> = (0..cfg.n_clusters)
        .map(|_| {
            let mut lo = [0; NMODES];
            let mut side = [0; NMODES];
            for m in 0..NMODES {
                side[m] =
                    ((cfg.dims[m] as f64 * cfg.box_frac).ceil() as usize).clamp(1, cfg.dims[m]);
                lo[m] = rng.random_range(0..=(cfg.dims[m] - side[m]));
            }
            ClusterBox { lo, side }
        })
        .collect();

    let n_clustered = (cfg.nnz as f64 * cfg.cluster_frac) as usize;
    let mut coords: Vec<[Idx; NMODES]> = Vec::with_capacity(cfg.nnz);
    for _ in 0..n_clustered {
        let b = &boxes[rng.random_range(0..boxes.len())];
        let mut idx = [0; NMODES];
        for m in 0..NMODES {
            idx[m] = (b.lo[m] + rng.random_range(0..b.side[m])) as Idx;
        }
        coords.push(idx);
    }
    for _ in n_clustered..cfg.nnz {
        let mut idx = [0; NMODES];
        for m in 0..NMODES {
            idx[m] = rng.random_range(0..cfg.dims[m] as Idx);
        }
        coords.push(idx);
    }

    coords.sort_unstable();
    let mut entries: Vec<Entry> = Vec::new();
    let mut i = 0;
    while i < coords.len() {
        let mut j = i + 1;
        while j < coords.len() && coords[j] == coords[i] {
            j += 1;
        }
        entries.push(Entry {
            idx: coords[i],
            val: (j - i) as f64,
        });
        i = j;
    }
    CooTensor::from_entries(cfg.dims, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_near_target_nnz() {
        let cfg = ClusteredConfig::new([500, 400, 300], 10_000);
        let a = clustered_tensor(&cfg, 17);
        let b = clustered_tensor(&cfg, 17);
        assert_eq!(a.entries(), b.entries());
        // Merging duplicates loses some positions; most survive.
        assert!(a.nnz() > 6_000 && a.nnz() <= 10_000, "nnz = {}", a.nnz());
    }

    #[test]
    fn fully_clustered_occupies_boxes_only() {
        let cfg = ClusteredConfig {
            dims: [1000, 1000, 1000],
            nnz: 5_000,
            n_clusters: 2,
            cluster_frac: 1.0,
            box_frac: 0.01,
        };
        let t = clustered_tensor(&cfg, 3);
        // all nonzeros live in at most 2 boxes of side 10 per mode
        let mut rows: Vec<u32> = t.entries().iter().map(|e| e.idx[0]).collect();
        rows.sort_unstable();
        rows.dedup();
        assert!(rows.len() <= 20, "rows touched: {}", rows.len());
    }

    #[test]
    fn background_spreads_out() {
        let cfg = ClusteredConfig {
            dims: [2000, 2000, 2000],
            nnz: 5_000,
            n_clusters: 1,
            cluster_frac: 0.0,
            box_frac: 0.01,
        };
        let t = clustered_tensor(&cfg, 3);
        let mut rows: Vec<u32> = t.entries().iter().map(|e| e.idx[0]).collect();
        rows.sort_unstable();
        rows.dedup();
        assert!(
            rows.len() > 1000,
            "background should be spread: {}",
            rows.len()
        );
    }

    #[test]
    fn tiny_dims_clamp_boxes() {
        let cfg = ClusteredConfig::new([2, 2, 2], 4);
        let t = clustered_tensor(&cfg, 1);
        assert!(t.nnz() >= 1);
        for e in t.entries() {
            for m in 0..NMODES {
                assert!((e.idx[m] as usize) < 2);
            }
        }
    }
}
