//! The Table II data-set registry.
//!
//! Each entry records the paper's dimensions and nonzero count plus a
//! default laptop-scale analogue: Poisson rows use the Chi–Kolda event
//! sampler ([`super::poisson_tensor`]), real-data rows use the clustered
//! generator ([`super::clustered_tensor`]) that plants the dense
//! sub-structure real tensors exhibit. Scale factors are chosen so each
//! default tensor lands near 1M nonzeros; `generate_with` allows arbitrary
//! re-scaling (up to and including the full paper sizes).

use super::{clustered_tensor, poisson_tensor, ClusteredConfig, PoissonConfig};
use crate::coo::CooTensor;
use crate::NMODES;

/// The seven data sets of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// 256 x 256 x 256, 1.5M nnz, synthetic Poisson.
    Poisson1,
    /// 2K x 16K x 2K, 121M nnz, synthetic Poisson.
    Poisson2,
    /// 30K x 30K x 30K, 135M nnz, synthetic Poisson.
    Poisson3,
    /// 12K x 9K x 29K, 77M nnz (NELL-2, real).
    Nell2,
    /// 480K x 18K x 80, 80M nnz (Netflix, real).
    Netflix,
    /// 1.2M x 23K x 1.3M, 924M nnz (Reddit, real).
    Reddit,
    /// 4.8M x 1.8M x 1.8M, 1.7B nnz (Amazon, real).
    Amazon,
}

/// All data sets in Table II order.
pub const ALL_DATASETS: [Dataset; 7] = [
    Dataset::Poisson1,
    Dataset::Poisson2,
    Dataset::Poisson3,
    Dataset::Nell2,
    Dataset::Netflix,
    Dataset::Reddit,
    Dataset::Amazon,
];

/// How a data set's analogue is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenKind {
    /// Chi–Kolda Poisson event sampling (synthetic rows of Table II).
    Poisson,
    /// Planted dense clusters + background (real-data rows of Table II).
    Clustered,
}

/// Static description of one Table II row and its scaled default.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Table II name.
    pub name: &'static str,
    /// Dimensions in the paper.
    pub paper_dims: [usize; NMODES],
    /// Nonzeros in the paper.
    pub paper_nnz: u64,
    /// Generator family.
    pub kind: GenKind,
    /// Default scaled dimensions for this reproduction.
    pub default_dims: [usize; NMODES],
    /// Default scaled nonzero target.
    pub default_nnz: usize,
}

impl Dataset {
    /// The registry entry for this data set.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Dataset::Poisson1 => DatasetSpec {
                name: "Poisson1",
                paper_dims: [256, 256, 256],
                paper_nnz: 1_500_000,
                kind: GenKind::Poisson,
                default_dims: [256, 256, 256],
                default_nnz: 1_000_000,
            },
            Dataset::Poisson2 => DatasetSpec {
                name: "Poisson2",
                paper_dims: [2_000, 16_000, 2_000],
                paper_nnz: 121_000_000,
                kind: GenKind::Poisson,
                default_dims: [1_000, 8_000, 1_000],
                default_nnz: 1_200_000,
            },
            Dataset::Poisson3 => DatasetSpec {
                name: "Poisson3",
                paper_dims: [30_000, 30_000, 30_000],
                paper_nnz: 135_000_000,
                kind: GenKind::Poisson,
                default_dims: [6_000, 6_000, 6_000],
                default_nnz: 1_200_000,
            },
            Dataset::Nell2 => DatasetSpec {
                name: "NELL2",
                paper_dims: [12_000, 9_000, 29_000],
                paper_nnz: 77_000_000,
                kind: GenKind::Clustered,
                default_dims: [6_000, 4_500, 14_500],
                default_nnz: 1_000_000,
            },
            Dataset::Netflix => DatasetSpec {
                name: "Netflix",
                paper_dims: [480_000, 18_000, 80],
                paper_nnz: 80_000_000,
                kind: GenKind::Clustered,
                default_dims: [48_000, 9_000, 80],
                default_nnz: 1_000_000,
            },
            Dataset::Reddit => DatasetSpec {
                name: "Reddit",
                paper_dims: [1_200_000, 23_000, 1_300_000],
                paper_nnz: 924_000_000,
                kind: GenKind::Clustered,
                default_dims: [120_000, 11_500, 130_000],
                default_nnz: 1_000_000,
            },
            Dataset::Amazon => DatasetSpec {
                name: "Amazon",
                paper_dims: [4_800_000, 1_800_000, 1_800_000],
                paper_nnz: 1_700_000_000,
                kind: GenKind::Clustered,
                default_dims: [240_000, 90_000, 90_000],
                default_nnz: 1_000_000,
            },
        }
    }

    /// Generates the default-scale analogue, deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> CooTensor {
        let spec = self.spec();
        self.generate_with(spec.default_dims, spec.default_nnz, seed)
    }

    /// Generates an analogue at an arbitrary scale. `nnz` is a target:
    /// merged duplicates make the realized count slightly smaller.
    pub fn generate_with(&self, dims: [usize; NMODES], nnz: usize, seed: u64) -> CooTensor {
        let spec = self.spec();
        match spec.kind {
            GenKind::Poisson => {
                let mut cfg = PoissonConfig::new(dims, nnz);
                // Amazon-like slightly-denser clustering is irrelevant here;
                // Poisson rows use the default rank-16/10% model.
                cfg.gen_rank = 16;
                poisson_tensor(&cfg, seed)
            }
            GenKind::Clustered => {
                let cfg = ClusteredConfig::new(dims, nnz);
                clustered_tensor(&cfg, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_table_ii() {
        assert_eq!(ALL_DATASETS.len(), 7);
        for d in ALL_DATASETS {
            let s = d.spec();
            assert!(s.paper_nnz > 0);
            assert!(s.default_nnz > 0);
            for m in 0..NMODES {
                assert!(s.default_dims[m] <= s.paper_dims[m]);
            }
        }
    }

    #[test]
    fn aspect_ratios_preserved_roughly() {
        // Netflix keeps its extreme mode-3 = 80
        let s = Dataset::Netflix.spec();
        assert_eq!(s.default_dims[2], 80);
        // Poisson2 keeps the 1:8:1 shape
        let s2 = Dataset::Poisson2.spec();
        assert_eq!(s2.default_dims[1] / s2.default_dims[0], 8);
    }

    #[test]
    fn small_scale_generation_works() {
        for d in ALL_DATASETS {
            let t = d.generate_with([100, 80, 60], 2_000, 42);
            assert!(t.nnz() > 500, "{:?} produced only {} nnz", d, t.nnz());
            assert_eq!(t.dims(), [100, 80, 60]);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Nell2.generate_with([64, 64, 64], 1_000, 5);
        let b = Dataset::Nell2.generate_with([64, 64, 64], 1_000, 5);
        assert_eq!(a.entries(), b.entries());
    }
}
