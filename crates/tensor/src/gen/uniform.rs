//! Uniform random sparse tensors.
//!
//! Positions are sampled uniformly over the full index space (no structure
//! at all). This is the adversarial case for the paper's blocking
//! techniques: with no dense sub-structure, multi-dimensional blocking can
//! only help by shrinking the factor-matrix working set, never by exploiting
//! clustering.

use crate::coo::{CooTensor, Entry};
use crate::{Idx, NMODES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a tensor with `nnz` distinct uniformly random nonzero
/// positions and values drawn from `|N(0,1)| + 0.1`.
///
/// # Panics
/// Panics if `nnz` exceeds the number of cells in the tensor.
pub fn uniform_tensor(dims: [usize; NMODES], nnz: usize, seed: u64) -> CooTensor {
    let cells: u128 = dims.iter().map(|&d| d as u128).product();
    assert!(
        (nnz as u128) <= cells,
        "requested {nnz} nonzeros but tensor has only {cells} cells"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords: Vec<[Idx; NMODES]> = Vec::with_capacity(nnz + nnz / 4);
    while {
        coords.sort_unstable();
        coords.dedup();
        coords.len() < nnz
    } {
        let missing = nnz - coords.len();
        for _ in 0..missing + missing / 4 + 8 {
            let mut idx = [0; NMODES];
            for m in 0..NMODES {
                idx[m] = rng.random_range(0..dims[m] as Idx);
            }
            coords.push(idx);
        }
    }
    coords.truncate(nnz);
    let entries = coords
        .into_iter()
        .map(|idx| {
            // Box-Muller for a half-normal magnitude
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random::<f64>();
            let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            Entry {
                idx,
                val: n.abs() + 0.1,
            }
        })
        .collect();
    CooTensor::from_entries(dims, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_nnz_and_determinism() {
        let a = uniform_tensor([20, 30, 40], 500, 11);
        let b = uniform_tensor([20, 30, 40], 500, 11);
        assert_eq!(a.nnz(), 500);
        assert_eq!(a.entries(), b.entries());
        for e in a.entries() {
            assert!(e.val >= 0.1);
        }
    }

    #[test]
    fn dense_request_fills_tensor() {
        let t = uniform_tensor([3, 3, 3], 27, 5);
        assert_eq!(t.nnz(), 27);
    }

    #[test]
    #[should_panic(expected = "only")]
    fn overfull_request_panics() {
        uniform_tensor([2, 2, 2], 9, 1);
    }
}
