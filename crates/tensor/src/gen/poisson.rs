//! Poisson ("count") tensor generation.
//!
//! Follows the generation method of Chi & Kolda (ref. [25] of the paper),
//! also used by Hansen et al. [24], which the paper cites for its Poisson1–3
//! data sets: a low-rank nonnegative model is drawn (one probability vector
//! per mode per component plus component weights), and `total_events` i.i.d.
//! events are sampled from the model — each event picks a component by
//! weight, then one index per mode from that component's distribution. The
//! event multiset becomes a sparse count tensor whose values are exactly the
//! event multiplicities, i.e. Poisson-distributed counts conditioned on the
//! total.

use super::SparseDist;
use crate::coo::{CooTensor, Entry};
use crate::NMODES;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`poisson_tensor`].
#[derive(Debug, Clone)]
pub struct PoissonConfig {
    /// Tensor shape.
    pub dims: [usize; NMODES],
    /// Number of events to sample. The resulting nnz (distinct coordinates)
    /// is at most this, typically 60–90% of it.
    pub total_events: usize,
    /// Rank of the generating low-rank model.
    pub gen_rank: usize,
    /// Fraction of each mode length used as component support
    /// (`0 < f <= 1`); smaller values give sharper clustering.
    pub support_frac: f64,
    /// Optional per-mode override of `support_frac`. Shrinking the supports
    /// of modes 1 and 3 relative to mode 2 concentrates events onto fewer
    /// `(i, k)` fibers, raising the nonzeros-per-fiber ratio (`nnz/F`) —
    /// useful for reproducing the paper's "nnz is typically much larger
    /// than F" regime (Section IV-A).
    pub support_frac_per_mode: Option<[f64; NMODES]>,
}

impl PoissonConfig {
    /// A reasonable default model: rank-16 generator with 10% support.
    pub fn new(dims: [usize; NMODES], total_events: usize) -> Self {
        PoissonConfig {
            dims,
            total_events,
            gen_rank: 16,
            support_frac: 0.1,
            support_frac_per_mode: None,
        }
    }

    /// The support fraction effective for mode `m`.
    pub fn support_for_mode(&self, m: usize) -> f64 {
        self.support_frac_per_mode
            .map(|s| s[m])
            .unwrap_or(self.support_frac)
    }
}

/// Generates a Poisson count tensor (values are positive integers stored as
/// `f64`), deterministically from `seed`.
pub fn poisson_tensor(cfg: &PoissonConfig, seed: u64) -> CooTensor {
    assert!(cfg.gen_rank > 0, "generator rank must be positive");
    for m in 0..NMODES {
        let f = cfg.support_for_mode(m);
        assert!(
            (0.0..=1.0).contains(&f) && f > 0.0,
            "support fraction must be in (0, 1]"
        );
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Component weights lambda_r (unnormalized; cumulative for sampling).
    let mut lambda_cum = Vec::with_capacity(cfg.gen_rank);
    let mut acc = 0.0;
    for _ in 0..cfg.gen_rank {
        acc += rng.random::<f64>() + 0.1;
        lambda_cum.push(acc);
    }

    // Per-mode, per-component index distributions.
    let dists: Vec<Vec<SparseDist>> = (0..NMODES)
        .map(|m| {
            (0..cfg.gen_rank)
                .map(|_| {
                    let support =
                        ((cfg.dims[m] as f64 * cfg.support_for_mode(m)).ceil() as usize).max(1);
                    SparseDist::random(&mut rng, cfg.dims[m], support)
                })
                .collect()
        })
        .collect();

    // Sample events and count multiplicities.
    let total = *lambda_cum.last().unwrap(); // built from NMODES per-mode tables, never empty — lint: allow(panic-reach)
    let mut coords: Vec<[crate::Idx; NMODES]> = Vec::with_capacity(cfg.total_events);
    for _ in 0..cfg.total_events {
        let x = rng.random::<f64>() * total;
        let r = lambda_cum
            .partition_point(|&c| c <= x)
            .min(cfg.gen_rank - 1);
        let mut idx = [0; NMODES];
        for m in 0..NMODES {
            idx[m] = dists[m][r].sample(&mut rng);
        }
        coords.push(idx);
    }
    coords.sort_unstable();
    let mut entries: Vec<Entry> = Vec::new();
    let mut i = 0;
    while i < coords.len() {
        let mut j = i + 1;
        while j < coords.len() && coords[j] == coords[i] {
            j += 1;
        }
        entries.push(Entry {
            idx: coords[i],
            val: (j - i) as f64,
        });
        i = j;
    }
    CooTensor::from_entries(cfg.dims, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let cfg = PoissonConfig::new([50, 60, 70], 5_000);
        let a = poisson_tensor(&cfg, 1);
        let b = poisson_tensor(&cfg, 1);
        assert_eq!(a.entries(), b.entries());
        assert_eq!(a.dims(), [50, 60, 70]);
        for e in a.entries() {
            assert!(e.val >= 1.0);
            assert_eq!(e.val.fract(), 0.0, "counts must be integers");
        }
    }

    #[test]
    fn total_count_matches_events() {
        let cfg = PoissonConfig::new([30, 30, 30], 2_000);
        let t = poisson_tensor(&cfg, 3);
        let total: f64 = t.entries().iter().map(|e| e.val).sum();
        assert_eq!(total, 2_000.0);
        assert!(t.nnz() <= 2_000);
        assert!(t.nnz() > 0);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = PoissonConfig::new([40, 40, 40], 3_000);
        let a = poisson_tensor(&cfg, 1);
        let b = poisson_tensor(&cfg, 2);
        assert_ne!(a.entries(), b.entries());
    }

    #[test]
    fn per_mode_support_raises_fiber_density() {
        use crate::coo::MODE1_PERM;
        let thin = PoissonConfig::new([2000, 2000, 2000], 30_000);
        let mut dense = thin.clone();
        dense.gen_rank = 8;
        dense.support_frac_per_mode = Some([0.01, 0.05, 0.01]);
        let t_thin = poisson_tensor(&thin, 4);
        let t_dense = poisson_tensor(&dense, 4);
        let ratio = |t: &crate::CooTensor| t.nnz() as f64 / t.count_fibers(MODE1_PERM) as f64;
        assert!(
            ratio(&t_dense) > 1.5 * ratio(&t_thin),
            "dense {} vs thin {}",
            ratio(&t_dense),
            ratio(&t_thin)
        );
    }

    #[test]
    fn clustering_concentrates_mass() {
        // With 10% support per component, nonzeros should touch well under
        // the full index space of a mode.
        let cfg = PoissonConfig {
            dims: [1000, 1000, 1000],
            total_events: 10_000,
            gen_rank: 4,
            support_frac: 0.05,
            support_frac_per_mode: None,
        };
        let t = poisson_tensor(&cfg, 9);
        let mut rows: Vec<u32> = t.entries().iter().map(|e| e.idx[0]).collect();
        rows.sort_unstable();
        rows.dedup();
        // 4 components x 5% support = at most ~20% of rows touched
        assert!(rows.len() <= 250, "rows touched: {}", rows.len());
    }
}
