//! Synthetic tensor generators and the Table II data-set registry.
//!
//! The paper evaluates on three synthetic Poisson tensors and four real data
//! sets from FROSTT (Netflix, NELL-2, Reddit, Amazon). The real sets are
//! hundreds of millions to billions of nonzeros and are not redistributable
//! here, so the registry generates *scaled analogues*: same mode-aspect
//! ratios, scaled sizes, and — crucially — the clustered dense sub-structure
//! the paper identifies as the property that makes blocking effective on
//! real data (Section VI-C). Real FROSTT files can be substituted via
//! [`crate::io::read_tns_file`].

mod clustered;
mod datasets;
mod poisson;
mod powerlaw;
mod uniform;

pub use clustered::{clustered_tensor, ClusteredConfig};
pub use datasets::{Dataset, DatasetSpec, ALL_DATASETS};
pub use poisson::{poisson_tensor, PoissonConfig};
pub use powerlaw::{powerlaw_tensor, PowerLawConfig};
pub use uniform::uniform_tensor;

use crate::Idx;
use rand::Rng;

/// Samples an index from a cumulative weight table by binary search.
/// `cum` must be non-decreasing with a positive final value.
pub(crate) fn sample_cdf<R: Rng>(rng: &mut R, cum: &[f64], ids: &[Idx]) -> Idx {
    let total = *cum.last().expect("non-empty cdf"); // documented precondition; callers build ≥1-entry tables — lint: allow(panic-reach)
    let x = rng.random::<f64>() * total;
    // partition_point returns the first index with cum[i] > x
    let pos = cum.partition_point(|&c| c <= x).min(cum.len() - 1);
    ids[pos]
}

/// A normalized discrete distribution over a subset of `0..dim`.
#[derive(Debug, Clone)]
pub(crate) struct SparseDist {
    ids: Vec<Idx>,
    cum: Vec<f64>,
}

impl SparseDist {
    /// Builds a distribution supported on `support_size` uniformly chosen
    /// indices with Exp(1)-like weights.
    pub fn random<R: Rng>(rng: &mut R, dim: usize, support_size: usize) -> Self {
        let support_size = support_size.clamp(1, dim);
        let mut ids: Vec<Idx> = rand::seq::index::sample(rng, dim, support_size)
            .into_iter()
            .map(|i| i as Idx)
            .collect();
        ids.sort_unstable();
        let mut cum = Vec::with_capacity(ids.len());
        let mut acc = 0.0;
        for _ in &ids {
            // inverse-CDF exponential sample; strictly positive
            let u: f64 = rng.random::<f64>().max(1e-12);
            acc += -u.ln();
            cum.push(acc);
        }
        SparseDist { ids, cum }
    }

    /// Draws one index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Idx {
        sample_cdf(rng, &self.cum, &self.ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sparse_dist_stays_in_support() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = SparseDist::random(&mut rng, 100, 10);
        assert_eq!(d.ids.len(), 10);
        for _ in 0..1000 {
            let i = d.sample(&mut rng);
            assert!(d.ids.contains(&i));
        }
    }

    #[test]
    fn sparse_dist_support_clamped() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = SparseDist::random(&mut rng, 5, 50);
        assert_eq!(d.ids.len(), 5);
        let d1 = SparseDist::random(&mut rng, 5, 0);
        assert_eq!(d1.ids.len(), 1);
    }

    #[test]
    fn cdf_sampling_is_weight_proportional() {
        let mut rng = StdRng::seed_from_u64(42);
        // two ids, weights 1 and 3 -> second should appear ~75% of the time
        let cum = vec![1.0, 4.0];
        let ids = vec![0, 1];
        let mut hits = [0usize; 2];
        for _ in 0..20_000 {
            hits[sample_cdf(&mut rng, &cum, &ids) as usize] += 1;
        }
        let frac = hits[1] as f64 / 20_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }
}
