//! Power-law (Zipf) tensor generation.
//!
//! Real recommender/web tensors (Netflix, Reddit, Amazon in Table II) have
//! heavily skewed mode distributions: a few users/items account for most
//! nonzeros. The clustered generator models *block* structure; this one
//! models *degree* structure — per-mode Zipf marginals with independent
//! sampling — which is the regime where slice-level load imbalance and
//! hot factor rows appear.

use crate::coo::{CooTensor, Entry};
use crate::{Idx, NMODES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`powerlaw_tensor`].
#[derive(Debug, Clone)]
pub struct PowerLawConfig {
    /// Tensor shape.
    pub dims: [usize; NMODES],
    /// Target number of nonzeros (duplicates merged into counts).
    pub nnz: usize,
    /// Zipf exponent per mode (`0.0` = uniform, `~1.0` = heavy skew).
    pub exponent: [f64; NMODES],
}

impl PowerLawConfig {
    /// Recommender-style defaults: skewed users/items, mild time skew.
    pub fn new(dims: [usize; NMODES], nnz: usize) -> Self {
        PowerLawConfig {
            dims,
            nnz,
            exponent: [0.9, 0.9, 0.4],
        }
    }
}

/// Cumulative Zipf weights over `0..dim` with the ranks randomly permuted
/// (so hot indices are scattered, as in collected data).
fn zipf_cdf(rng: &mut StdRng, dim: usize, s: f64) -> (Vec<f64>, Vec<Idx>) {
    let mut ids: Vec<Idx> = (0..dim as Idx).collect();
    // Fisher-Yates
    for i in (1..dim).rev() {
        let j = rng.random_range(0..=i);
        ids.swap(i, j);
    }
    let mut cum = Vec::with_capacity(dim);
    let mut acc = 0.0;
    for r in 0..dim {
        acc += 1.0 / ((r + 1) as f64).powf(s);
        cum.push(acc);
    }
    (cum, ids)
}

/// Generates a tensor with Zipf-distributed mode marginals,
/// deterministically from `seed`. Values are occurrence counts.
pub fn powerlaw_tensor(cfg: &PowerLawConfig, seed: u64) -> CooTensor {
    for m in 0..NMODES {
        assert!(cfg.exponent[m] >= 0.0, "Zipf exponent must be non-negative");
        assert!(cfg.dims[m] > 0, "dimensions must be positive");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let dists: Vec<(Vec<f64>, Vec<Idx>)> = (0..NMODES)
        .map(|m| zipf_cdf(&mut rng, cfg.dims[m], cfg.exponent[m]))
        .collect();

    let mut coords: Vec<[Idx; NMODES]> = Vec::with_capacity(cfg.nnz);
    for _ in 0..cfg.nnz {
        let mut idx = [0; NMODES];
        for m in 0..NMODES {
            let (cum, ids) = &dists[m];
            idx[m] = super::sample_cdf(&mut rng, cum, ids);
        }
        coords.push(idx);
    }
    coords.sort_unstable();
    let mut entries: Vec<Entry> = Vec::new();
    let mut i = 0;
    while i < coords.len() {
        let mut j = i + 1;
        while j < coords.len() && coords[j] == coords[i] {
            j += 1;
        }
        entries.push(Entry {
            idx: coords[i],
            val: (j - i) as f64,
        });
        i = j;
    }
    CooTensor::from_entries(cfg.dims, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_counts() {
        let cfg = PowerLawConfig::new([200, 300, 50], 5_000);
        let a = powerlaw_tensor(&cfg, 3);
        let b = powerlaw_tensor(&cfg, 3);
        assert_eq!(a.entries(), b.entries());
        let total: f64 = a.entries().iter().map(|e| e.val).sum();
        assert_eq!(total, 5_000.0);
    }

    #[test]
    fn skew_concentrates_mass() {
        let skewed = PowerLawConfig {
            dims: [1_000, 100, 100],
            nnz: 20_000,
            exponent: [1.2, 0.0, 0.0],
        };
        let t = powerlaw_tensor(&skewed, 7);
        // per-slice mass: the top 10 slices should hold far more than
        // 10/1000 of the total under s = 1.2
        let mut per_slice = vec![0.0; 1_000];
        for e in t.entries() {
            per_slice[e.idx[0] as usize] += e.val;
        }
        per_slice.sort_by(|a, b| b.total_cmp(a));
        let top10: f64 = per_slice[..10].iter().sum();
        let total: f64 = per_slice.iter().sum();
        assert!(top10 / total > 0.15, "top-10 share {}", top10 / total);
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let cfg = PowerLawConfig {
            dims: [500, 50, 50],
            nnz: 20_000,
            exponent: [0.0, 0.0, 0.0],
        };
        let t = powerlaw_tensor(&cfg, 9);
        let mut per_slice = vec![0.0; 500];
        for e in t.entries() {
            per_slice[e.idx[0] as usize] += e.val;
        }
        per_slice.sort_by(|a, b| b.total_cmp(a));
        let top10: f64 = per_slice[..10].iter().sum();
        let total: f64 = per_slice.iter().sum();
        assert!(
            top10 / total < 0.06,
            "uniform top-10 share {}",
            top10 / total
        );
    }
}
