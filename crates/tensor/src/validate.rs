//! Structural invariant checkers for the compressed formats.
//!
//! These run the full battery of representation invariants (monotone
//! pointer arrays, sorted fiber ids within a slice, in-range coordinates,
//! aligned value arrays) and return human-readable violations. They back
//! the test suites and are exposed publicly so downstream code that builds
//! `SplattTensor`/`CsfTensor` values by hand (e.g. from mmap'd files) can
//! sanity-check them.

use crate::csf::CsfTensor;
use crate::splatt::SplattTensor;

/// Checks every structural invariant of a SPLATT tensor. Returns all
/// violations found (empty = valid).
pub fn check_splatt(t: &SplattTensor) -> Vec<String> {
    let mut errs = Vec::new();
    let dims = t.dims();
    let perm = t.perm();
    let (i_ptr, fiber_kid, fiber_ptr, j_idx, vals) = t.raw();

    if i_ptr.len() != t.n_slices() + 1 {
        errs.push(format!(
            "i_ptr length {} != n_slices + 1 = {}",
            i_ptr.len(),
            t.n_slices() + 1
        ));
    }
    if fiber_ptr.len() != fiber_kid.len() + 1 {
        errs.push(format!(
            "fiber_ptr length {} != n_fibers + 1 = {}",
            fiber_ptr.len(),
            fiber_kid.len() + 1
        ));
    }
    if j_idx.len() != vals.len() {
        errs.push(format!(
            "j_idx length {} != vals length {}",
            j_idx.len(),
            vals.len()
        ));
    }
    if i_ptr.windows(2).any(|w| w[0] > w[1]) {
        errs.push("i_ptr is not monotone".into());
    }
    if fiber_ptr.windows(2).any(|w| w[0] > w[1]) {
        errs.push("fiber_ptr is not monotone".into());
    }
    if let (Some(&last_i), Some(&last_f)) = (i_ptr.last(), fiber_ptr.last()) {
        if last_i != fiber_kid.len() {
            errs.push(format!(
                "i_ptr end {last_i} != fiber count {}",
                fiber_kid.len()
            ));
        }
        if last_f != vals.len() {
            errs.push(format!("fiber_ptr end {last_f} != nnz {}", vals.len()));
        }
    }
    for s in 0..t.n_slices() {
        if t.slice_global(s) >= dims[perm[0]] {
            errs.push(format!(
                "slice {s} maps to out-of-range global {}",
                t.slice_global(s)
            ));
        }
        // fibers within a slice must have strictly increasing kids
        let fibers: Vec<u32> = t.slice_fibers(s).map(|f| fiber_kid[f]).collect();
        if fibers.windows(2).any(|w| w[0] >= w[1]) {
            errs.push(format!("slice {s} fibers not strictly increasing"));
        }
    }
    if fiber_kid.iter().any(|&k| (k as usize) >= dims[perm[2]]) {
        errs.push("fiber k index out of range".into());
    }
    if j_idx.iter().any(|&j| (j as usize) >= dims[perm[1]]) {
        errs.push("nonzero j index out of range".into());
    }
    errs
}

/// Checks every structural invariant of a CSF tensor.
pub fn check_csf(t: &CsfTensor) -> Vec<String> {
    let mut errs = Vec::new();
    let order = t.order();
    let dims = t.dims();
    let perm = t.perm();

    if t.n_nodes(order - 1) != t.nnz() {
        errs.push(format!(
            "leaf count {} != nnz {}",
            t.n_nodes(order - 1),
            t.nnz()
        ));
    }
    for l in 0..order {
        for node in 0..t.n_nodes(l) {
            if (t.fid(l, node) as usize) >= dims[perm[l]] {
                errs.push(format!("level {l} node {node} fid out of range"));
            }
        }
    }
    for l in 0..order - 1 {
        let mut covered = 0;
        for node in 0..t.n_nodes(l) {
            let r = t.children(l, node);
            if r.start != covered {
                errs.push(format!("level {l} node {node} child range has a gap"));
            }
            if r.is_empty() {
                errs.push(format!("level {l} node {node} has no children"));
            }
            // children of one parent have strictly increasing fids
            let kids: Vec<u32> = r.clone().map(|c| t.fid(l + 1, c)).collect();
            if kids.windows(2).any(|w| w[0] >= w[1]) {
                errs.push(format!("level {l} node {node} children not increasing"));
            }
            covered = r.end;
        }
        if covered != t.n_nodes(l + 1) {
            errs.push(format!(
                "level {l} child ranges cover {covered} != {} nodes",
                t.n_nodes(l + 1)
            ));
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::MODE1_PERM;
    use crate::gen::uniform_tensor;
    use crate::nd::uniform_nd;

    #[test]
    fn built_splatt_tensors_are_valid() {
        let x = uniform_tensor([30, 25, 20], 600, 4);
        for mode in 0..3 {
            let t = SplattTensor::for_mode(&x, mode);
            assert!(check_splatt(&t).is_empty(), "{:?}", check_splatt(&t));
        }
        let compressed =
            SplattTensor::from_entries_compressed(x.dims(), MODE1_PERM, x.entries().to_vec());
        assert!(check_splatt(&compressed).is_empty());
    }

    #[test]
    fn built_csf_tensors_are_valid() {
        for order in [2usize, 3, 4, 5] {
            let dims: Vec<usize> = (0..order).map(|m| 5 + m).collect();
            let cells: usize = dims.iter().product();
            let x = uniform_nd(&dims, (cells / 3).max(1), order as u64);
            for root in 0..order {
                let t = CsfTensor::for_mode(&x, root);
                let errs = check_csf(&t);
                assert!(errs.is_empty(), "order {order} root {root}: {errs:?}");
            }
        }
    }

    #[test]
    fn empty_structures_are_valid() {
        let x = crate::CooTensor::empty([4, 4, 4]);
        assert!(check_splatt(&SplattTensor::for_mode(&x, 0)).is_empty());
        let nd = crate::NdCooTensor::empty(vec![3, 3, 3]);
        assert!(check_csf(&CsfTensor::for_mode(&nd, 0)).is_empty());
    }
}
