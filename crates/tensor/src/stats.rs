//! Data-set statistics (the columns of Table II plus fiber counts).

use crate::coo::{perm_for_mode, CooTensor};
use crate::NMODES;

/// Summary statistics of a sparse tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorStats {
    /// Mode lengths.
    pub dims: [usize; NMODES],
    /// Number of nonzeros.
    pub nnz: usize,
    /// `nnz / (I*J*K)`.
    pub sparsity: f64,
    /// Non-empty fibers per mode orientation (the `F` of Equation 1 for
    /// each mode's MTTKRP).
    pub fibers: [usize; NMODES],
    /// Average nonzeros per non-empty fiber, per mode.
    pub nnz_per_fiber: [f64; NMODES],
}

impl TensorStats {
    /// Computes statistics of `t`.
    pub fn of(t: &CooTensor) -> Self {
        let dims = t.dims();
        let nnz = t.nnz();
        let cells: f64 = dims.iter().map(|&d| d as f64).product();
        let mut fibers = [0usize; NMODES];
        let mut nnz_per_fiber = [0.0; NMODES];
        for m in 0..NMODES {
            fibers[m] = t.count_fibers(perm_for_mode(m));
            nnz_per_fiber[m] = if fibers[m] == 0 {
                0.0
            } else {
                nnz as f64 / fibers[m] as f64
            };
        }
        TensorStats {
            dims,
            nnz,
            sparsity: if cells == 0.0 {
                0.0
            } else {
                nnz as f64 / cells
            },
            fibers,
            nnz_per_fiber,
        }
    }

    /// One Table II-style row: `name, IxJxK, nnz, sparsity`.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{:<10} {:>9}x{:<9}x{:<9} {:>12} {:>10.1e}",
            name, self.dims[0], self.dims[1], self.dims[2], self.nnz, self.sparsity
        )
    }

    /// A stable 64-bit fingerprint of the tensor's tuning-relevant shape:
    /// dimensions, nonzero count, and per-mode fiber counts — the inputs the
    /// Section V-C heuristic is sensitive to. Two tensors with equal
    /// fingerprints get the same tuned plan (used as the plan-cache key);
    /// nonzero *values* are deliberately excluded, since MTTKRP cost does
    /// not depend on them.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100_0000_01b3); // FNV prime
            h ^= h >> 29;
        };
        for &d in &self.dims {
            mix(d as u64);
        }
        mix(self.nnz as u64);
        for &f in &self.fibers {
            mix(f as u64);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_small_tensor() {
        let t = CooTensor::from_triples(
            [3, 3, 3],
            &[0, 0, 0, 1, 1, 1, 2],
            &[0, 1, 1, 0, 1, 2, 0],
            &[0, 1, 2, 2, 1, 2, 0],
            &[5.0, 3.0, 1.0, 2.0, 9.0, 7.0, 9.0],
        );
        let s = TensorStats::of(&t);
        assert_eq!(s.nnz, 7);
        assert!((s.sparsity - 7.0 / 27.0).abs() < 1e-12);
        assert_eq!(s.fibers[0], 6); // Figure 1b
        assert!(s.nnz_per_fiber[0] > 1.0);
        let row = s.table_row("Fig1");
        assert!(row.contains("Fig1"));
        assert!(row.contains('7'));
    }

    #[test]
    fn stats_of_empty_tensor() {
        let s = TensorStats::of(&CooTensor::empty([2, 2, 2]));
        assert_eq!(s.nnz, 0);
        assert_eq!(s.sparsity, 0.0);
        assert_eq!(s.fibers, [0, 0, 0]);
        assert_eq!(s.nnz_per_fiber, [0.0, 0.0, 0.0]);
    }
}
