//! Data-set statistics (the columns of Table II plus fiber counts).

use crate::coo::{perm_for_mode, CooTensor};
use crate::NMODES;

/// Summary statistics of a sparse tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorStats {
    /// Mode lengths.
    pub dims: [usize; NMODES],
    /// Number of nonzeros.
    pub nnz: usize,
    /// `nnz / (I*J*K)`.
    pub sparsity: f64,
    /// Non-empty fibers per mode orientation (the `F` of Equation 1 for
    /// each mode's MTTKRP).
    pub fibers: [usize; NMODES],
    /// Average nonzeros per non-empty fiber, per mode.
    pub nnz_per_fiber: [f64; NMODES],
}

impl TensorStats {
    /// Computes statistics of `t`.
    pub fn of(t: &CooTensor) -> Self {
        let dims = t.dims();
        let nnz = t.nnz();
        let cells: f64 = dims.iter().map(|&d| d as f64).product();
        let mut fibers = [0usize; NMODES];
        let mut nnz_per_fiber = [0.0; NMODES];
        for m in 0..NMODES {
            fibers[m] = t.count_fibers(perm_for_mode(m));
            nnz_per_fiber[m] = if fibers[m] == 0 {
                0.0
            } else {
                nnz as f64 / fibers[m] as f64
            };
        }
        TensorStats {
            dims,
            nnz,
            sparsity: if cells == 0.0 {
                0.0
            } else {
                nnz as f64 / cells
            },
            fibers,
            nnz_per_fiber,
        }
    }

    /// One Table II-style row: `name, IxJxK, nnz, sparsity`.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{:<10} {:>9}x{:<9}x{:<9} {:>12} {:>10.1e}",
            name, self.dims[0], self.dims[1], self.dims[2], self.nnz, self.sparsity
        )
    }

    /// A stable 64-bit fingerprint of the tensor's tuning-relevant shape:
    /// dimensions, nonzero count, and per-mode fiber counts — the inputs the
    /// Section V-C heuristic is sensitive to. Two tensors with equal
    /// fingerprints get the same tuned plan (used as the plan-cache key);
    /// nonzero *values* are deliberately excluded, since MTTKRP cost does
    /// not depend on them.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100_0000_01b3); // FNV prime
            h ^= h >> 29;
        };
        for &d in &self.dims {
            mix(d as u64);
        }
        mix(self.nnz as u64);
        for &f in &self.fibers {
            mix(f as u64);
        }
        h
    }
}

/// Nonzeros per nonempty block of the mode-`mode` kernel grid, sorted
/// descending — the occupancy profile that predicts when the BCOO layout
/// pays off (a few hot, dense blocks amortize the per-block factor gather;
/// a uniform scatter of near-empty blocks does not).
pub fn block_occupancy(t: &CooTensor, mode: usize, grid: [usize; NMODES]) -> Vec<usize> {
    let b = crate::bcoo::BcooTensor::from_coo(t, mode, grid);
    let mut counts: Vec<usize> = (0..b.n_blocks()).map(|i| b.block_range(i).len()).collect();
    counts.sort_unstable_by(|x, y| y.cmp(x));
    counts
}

/// Renders block-occupancy counts as a power-of-two histogram, one line
/// per bucket: `nnz/block` range, block count, and a proportional bar.
pub fn occupancy_histogram(counts: &[usize]) -> String {
    if counts.is_empty() {
        return "  (no nonempty blocks)\n".to_string();
    }
    // Bucket b holds counts in [2^b, 2^(b+1)).
    let max = *counts.iter().max().unwrap_or(&1);
    let n_buckets = usize::BITS as usize - max.max(1).leading_zeros() as usize;
    let mut buckets = vec![0usize; n_buckets];
    for &c in counts {
        buckets[usize::BITS as usize - 1 - c.max(1).leading_zeros() as usize] += 1;
    }
    let tallest = *buckets.iter().max().unwrap_or(&1);
    let mut out = String::new();
    for (b, &n) in buckets.iter().enumerate() {
        let lo = 1usize << b;
        let hi = (1usize << (b + 1)) - 1;
        let range = if lo == hi {
            format!("{lo}")
        } else {
            format!("{lo}-{hi}")
        };
        let bar = "#".repeat((n * 40).div_ceil(tallest.max(1)).min(40));
        out.push_str(&format!("  {range:>13} nnz/block {n:>7} blocks {bar}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_small_tensor() {
        let t = CooTensor::from_triples(
            [3, 3, 3],
            &[0, 0, 0, 1, 1, 1, 2],
            &[0, 1, 1, 0, 1, 2, 0],
            &[0, 1, 2, 2, 1, 2, 0],
            &[5.0, 3.0, 1.0, 2.0, 9.0, 7.0, 9.0],
        );
        let s = TensorStats::of(&t);
        assert_eq!(s.nnz, 7);
        assert!((s.sparsity - 7.0 / 27.0).abs() < 1e-12);
        assert_eq!(s.fibers[0], 6); // Figure 1b
        assert!(s.nnz_per_fiber[0] > 1.0);
        let row = s.table_row("Fig1");
        assert!(row.contains("Fig1"));
        assert!(row.contains('7'));
    }

    #[test]
    fn stats_of_empty_tensor() {
        let s = TensorStats::of(&CooTensor::empty([2, 2, 2]));
        assert_eq!(s.nnz, 0);
        assert_eq!(s.sparsity, 0.0);
        assert_eq!(s.fibers, [0, 0, 0]);
        assert_eq!(s.nnz_per_fiber, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn block_occupancy_counts_and_histogram() {
        // A dense 2x2x2 corner plus one far-away nonzero: one block of 8
        // and one block of 1 under a 2x2x2 grid.
        let mut entries = Vec::new();
        for i in 0..2u32 {
            for j in 0..2u32 {
                for k in 0..2u32 {
                    entries.push(crate::Entry::new(i, j, k, 1.0));
                }
            }
        }
        entries.push(crate::Entry::new(7, 7, 7, 1.0));
        let t = CooTensor::from_entries([8, 8, 8], entries);
        let counts = block_occupancy(&t, 0, [2, 2, 2]);
        assert_eq!(counts, vec![8, 1]);
        let h = occupancy_histogram(&counts);
        assert!(h.contains("1 nnz/block"), "{h}");
        assert!(h.contains("8-15 nnz/block"), "{h}");
        assert!(occupancy_histogram(&[]).contains("no nonempty blocks"));
    }
}
