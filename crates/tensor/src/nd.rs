//! N-mode (arbitrary-order) coordinate tensors.
//!
//! The paper focuses its measurements on 3-mode data but notes that "our
//! methodology and result can trivially be extended to higher-order data"
//! via the CSF format (Smith & Karypis, ref. [12]). This module provides
//! the order-generic COO substrate that [`crate::csf`] compresses.
//!
//! Coordinates are stored flattened (`nnz x order`, row-major) to avoid a
//! heap allocation per nonzero.

use crate::Idx;

/// Typed construction errors for [`NdCooTensor::try_from_flat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NdError {
    /// `dims` is empty.
    ZeroOrder,
    /// `coords.len()` is not `vals.len() * order` (or that product
    /// overflows `usize`).
    LengthMismatch {
        /// Length of the flattened coordinate vector.
        coords: usize,
        /// Number of values.
        vals: usize,
        /// Tensor order.
        order: usize,
    },
    /// A coordinate is not strictly below its mode's dimension.
    CoordOutOfRange {
        /// Entry index in construction order.
        entry: usize,
        /// Mode of the offending coordinate.
        mode: usize,
        /// The coordinate value.
        coord: Idx,
        /// The dimension it must stay below.
        dim: usize,
    },
}

impl std::fmt::Display for NdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NdError::ZeroOrder => write!(f, "tensor order must be positive"),
            NdError::LengthMismatch {
                coords,
                vals,
                order,
            } => write!(
                f,
                "coordinate/value length mismatch ({coords} coords, {vals} values, order {order})"
            ),
            NdError::CoordOutOfRange {
                entry,
                mode,
                coord,
                dim,
            } => write!(
                f,
                "entry {entry}: coordinate {coord} out of range for mode {mode} (dim {dim})"
            ),
        }
    }
}

impl std::error::Error for NdError {}

/// An N-mode sparse tensor in coordinate format.
#[derive(Debug, Clone, PartialEq)]
pub struct NdCooTensor {
    dims: Vec<usize>,
    /// Flattened coordinates: entry `n`'s mode-`m` index is
    /// `coords[n * order + m]`.
    coords: Vec<Idx>,
    vals: Vec<f64>,
}

impl NdCooTensor {
    /// Builds a tensor from flattened coordinates, summing duplicates and
    /// rejecting malformed input with a typed [`NdError`] instead of
    /// panicking. Boundary code (the `.tnsb` decoder) uses this form so a
    /// hostile file becomes a value, not a crash.
    pub fn try_from_flat(
        dims: Vec<usize>,
        coords: Vec<Idx>,
        vals: Vec<f64>,
    ) -> Result<Self, NdError> {
        let order = dims.len();
        if order == 0 {
            return Err(NdError::ZeroOrder);
        }
        let expect = vals
            .len()
            .checked_mul(order)
            .ok_or(NdError::LengthMismatch {
                coords: coords.len(),
                vals: vals.len(),
                order,
            })?;
        if coords.len() != expect {
            return Err(NdError::LengthMismatch {
                coords: coords.len(),
                vals: vals.len(),
                order,
            });
        }
        for (n, chunk) in coords.chunks_exact(order).enumerate() {
            for (m, (&c, &dim)) in chunk.iter().zip(dims.iter()).enumerate() {
                if (c as usize) >= dim {
                    return Err(NdError::CoordOutOfRange {
                        entry: n,
                        mode: m,
                        coord: c,
                        dim,
                    });
                }
            }
        }
        let mut t = NdCooTensor { dims, coords, vals };
        t.sort_and_merge(&(0..order).collect::<Vec<_>>());
        Ok(t)
    }

    /// Builds a tensor from flattened coordinates, summing duplicates.
    ///
    /// # Panics
    /// Panics if `coords.len() != vals.len() * dims.len()`, if the order is
    /// zero, or if a coordinate exceeds its dimension.
    pub fn from_flat(dims: Vec<usize>, coords: Vec<Idx>, vals: Vec<f64>) -> Self {
        match Self::try_from_flat(dims, coords, vals) {
            Ok(t) => t,
            Err(e) => panic!("{e}"), // documented panic; trusted in-memory callers (generators) — lint: allow(panic-reach)
        }
    }

    /// An empty tensor.
    pub fn empty(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "tensor order must be positive");
        NdCooTensor {
            dims,
            coords: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Converts a 3-mode [`crate::CooTensor`].
    pub fn from_coo3(t: &crate::CooTensor) -> Self {
        // nnz entries (≥ 12 bytes each) already fit in memory, so nnz·3
        // cannot overflow usize — lint: allow(index-overflow)
        let mut coords = Vec::with_capacity(t.nnz() * 3);
        let mut vals = Vec::with_capacity(t.nnz());
        for e in t.entries() {
            coords.extend_from_slice(&e.idx);
            vals.push(e.val);
        }
        NdCooTensor {
            dims: t.dims().to_vec(),
            coords,
            vals,
        }
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode lengths.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Coordinates of entry `n`.
    #[inline]
    pub fn coord(&self, n: usize) -> &[Idx] {
        let o = self.order();
        // invariant: coords.len() == nnz·order, callers pass n < nnz — lint: allow(panic-reach)
        &self.coords[n * o..(n + 1) * o]
    }

    /// Value of entry `n`.
    #[inline]
    pub fn value(&self, n: usize) -> f64 {
        // invariant: callers pass n < nnz == vals.len() — lint: allow(panic-reach)
        self.vals[n]
    }

    /// All values.
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Sorts entries lexicographically by the mode order `perm` (a
    /// permutation of `0..order`) and merges duplicate coordinates.
    pub fn sort_and_merge(&mut self, perm: &[usize]) {
        let order = self.order();
        // defensive API check; construction passes the identity permutation — lint: allow(panic-reach)
        assert_eq!(perm.len(), order, "perm length must equal order");
        let nnz = self.nnz();
        let mut idx: Vec<usize> = (0..nnz).collect();
        idx.sort_unstable_by(|&a, &b| {
            let ca = self.coord(a);
            let cb = self.coord(b);
            for &m in perm {
                // perm is a permutation of 0..order, so m < order == ca.len() — lint: allow(panic-reach)
                match ca[m].cmp(&cb[m]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });

        let mut coords = Vec::with_capacity(self.coords.len());
        let mut vals: Vec<f64> = Vec::with_capacity(nnz);
        for &n in &idx {
            let c = self.coord(n);
            let dup = !vals.is_empty() && {
                // vals non-empty ⇒ coords holds ≥ order entries — lint: allow(panic-reach)
                let last = &coords[coords.len() - order..];
                last == c
            };
            if dup {
                // dup ⇒ vals non-empty; n < nnz == self.vals.len() — lint: allow(panic-reach)
                *vals.last_mut().unwrap() += self.vals[n];
            } else {
                coords.extend_from_slice(c);
                // n < nnz == self.vals.len() — lint: allow(panic-reach)
                vals.push(self.vals[n]);
            }
        }
        self.coords = coords;
        self.vals = vals;
    }

    /// Sum of squared values.
    pub fn sq_norm(&self) -> f64 {
        self.vals.iter().map(|v| v * v).sum()
    }
}

/// Uniform random N-mode tensor with `nnz` distinct positions (values in
/// `[0.5, 1.5)`), deterministic in `seed`.
pub fn uniform_nd(dims: &[usize], nnz: usize, seed: u64) -> NdCooTensor {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let cells: u128 = dims.iter().map(|&d| d as u128).product();
    assert!((nnz as u128) <= cells, "too many nonzeros requested");
    let order = dims.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: std::collections::BTreeSet<Vec<Idx>> = std::collections::BTreeSet::new();
    while seen.len() < nnz {
        let c: Vec<Idx> = dims
            .iter()
            .map(|&d| rng.random_range(0..d as Idx))
            .collect();
        seen.insert(c);
    }
    // nnz·order coordinates already exist in `seen` — lint: allow(index-overflow)
    let mut coords = Vec::with_capacity(nnz * order);
    let mut vals = Vec::with_capacity(nnz);
    for c in seen {
        coords.extend_from_slice(&c);
        vals.push(rng.random::<f64>() + 0.5);
    }
    NdCooTensor::from_flat(dims.to_vec(), coords, vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = NdCooTensor::from_flat(
            vec![2, 3, 4, 5],
            vec![0, 1, 2, 3, 1, 2, 3, 4],
            vec![1.5, 2.5],
        );
        assert_eq!(t.order(), 4);
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.coord(0), &[0, 1, 2, 3]);
        assert_eq!(t.value(1), 2.5);
    }

    #[test]
    fn duplicates_merge() {
        let t = NdCooTensor::from_flat(vec![2, 2], vec![1, 1, 1, 1, 0, 1], vec![2.0, 3.0, 1.0]);
        assert_eq!(t.nnz(), 2);
        let heavy = (0..t.nnz()).find(|&n| t.coord(n) == [1, 1]).unwrap();
        assert_eq!(t.value(heavy), 5.0);
    }

    #[test]
    fn sort_by_permutation() {
        let mut t = NdCooTensor::from_flat(vec![3, 3], vec![2, 0, 0, 2, 1, 1], vec![1.0, 2.0, 3.0]);
        t.sort_and_merge(&[1, 0]); // sort by mode 1 first
        let firsts: Vec<u32> = (0..3).map(|n| t.coord(n)[1]).collect();
        assert!(firsts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn from_coo3_matches() {
        let c3 = crate::CooTensor::from_triples([3, 3, 3], &[0, 1], &[1, 2], &[2, 0], &[4.0, 5.0]);
        let nd = NdCooTensor::from_coo3(&c3);
        assert_eq!(nd.order(), 3);
        assert_eq!(nd.nnz(), 2);
        assert_eq!(nd.coord(0), &[0, 1, 2]);
    }

    #[test]
    fn uniform_nd_generates_distinct() {
        let t = uniform_nd(&[5, 6, 7, 8], 200, 3);
        assert_eq!(t.nnz(), 200);
        for n in 1..t.nnz() {
            assert_ne!(t.coord(n - 1), t.coord(n));
        }
        let t2 = uniform_nd(&[5, 6, 7, 8], 200, 3);
        assert_eq!(t, t2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_coordinate_panics() {
        NdCooTensor::from_flat(vec![2, 2], vec![0, 2], vec![1.0]);
    }
}
