//! `TensorSource`: a tensor exposed as a grid of loadable tiles.
//!
//! The streaming MTTKRP driver in `tenblock-core` iterates tiles instead
//! of entries, so the same execution path runs over an in-memory COO
//! tensor, an already-blocked [`BcooTensor`], or the on-disk
//! [`TileStore`](crate::tile_store::TileStore) — only the last one ever
//! touches disk, and none of them require the full tensor to be decoded
//! at once on the consumer side.
//!
//! All sources speak *original* mode axes: a tile's `cell`, `origin`,
//! and `locals` index modes `0, 1, 2` in tensor order, and the grid uses
//! the same [`uniform_bounds`](crate::bcoo::uniform_bounds) arithmetic as
//! the MB/BCOO layouts. A mode-`m` kernel permutes per tile (cheap —
//! three-element arrays) rather than the source per mode (a full
//! re-shard). Tiles may be served in any order; drivers that need a
//! deterministic traversal sort tile indices themselves.

use crate::bcoo::{BcooOffsets, BcooTensor};
use crate::coo::CooTensor;
use crate::io_bin::BinError;
use crate::tile_store::{TileStore, TILE_ENTRY_BYTES};
use crate::{Entry, NMODES};

/// One loaded tile: a block-local COO fragment in original mode axes.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceTile {
    /// Grid cell per original axis.
    pub cell: [usize; NMODES],
    /// Global index of the tile's first position along each original axis.
    pub origin: [usize; NMODES],
    /// Block-local coordinates per entry, original axis order.
    pub locals: Vec<[u32; NMODES]>,
    /// Entry values, parallel to `locals`.
    pub vals: Vec<f64>,
}

impl SourceTile {
    /// Nonzeros in the tile.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }
}

/// A tensor that can be read one grid-aligned tile at a time.
///
/// `Send + Sync` is part of the contract: the streaming driver loads
/// tiles from a prefetch thread while the compute thread consumes the
/// previous one.
pub trait TensorSource: Send + Sync {
    /// Tensor dimensions (original mode order).
    fn dims(&self) -> [usize; NMODES];
    /// Total nonzeros across all tiles.
    fn nnz(&self) -> usize;
    /// Tile counts per original axis.
    fn grid(&self) -> [usize; NMODES];
    /// Number of nonempty tiles.
    fn n_tiles(&self) -> usize;
    /// Grid cell of tile `i` (original axes).
    fn tile_cell(&self, i: usize) -> [usize; NMODES];
    /// Nonzeros in tile `i`.
    fn tile_nnz(&self, i: usize) -> usize;
    /// Loads tile `i`. In-memory sources copy slices; the tile store
    /// reads and decodes from disk.
    fn load_tile(&self, i: usize) -> Result<SourceTile, BinError>;

    /// Streaming cost of tile `i` in bytes, as the uniform 20-byte-entry
    /// tile encoding. Budget planning uses this even for in-memory
    /// sources so grid choices transfer to the spilled case.
    fn tile_bytes(&self, i: usize) -> u64 {
        self.tile_nnz(i) as u64 * TILE_ENTRY_BYTES
    }

    /// The largest single-tile streaming cost — what a double-buffered
    /// reader must be able to hold twice.
    fn max_tile_bytes(&self) -> u64 {
        (0..self.n_tiles())
            .map(|i| self.tile_bytes(i))
            .max()
            .unwrap_or(0)
    }

    /// Sum of [`tile_bytes`](Self::tile_bytes) over all tiles: the bytes
    /// one full pass streams.
    fn total_tile_bytes(&self) -> u64 {
        (0..self.n_tiles()).map(|i| self.tile_bytes(i)).sum()
    }

    /// Byte offset of tile `i`'s payload in the backing file, when there
    /// is one. In-memory sources report 0; error reports use this to
    /// point at the failing region of an on-disk store.
    fn tile_offset(&self, _i: usize) -> u64 {
        0
    }
}

/// An in-memory COO tensor pre-sharded into grid tiles. Entries are
/// tagged, sorted by linear cell id, and converted to block-local form
/// once at construction; `load_tile` copies one contiguous range.
#[derive(Debug, Clone)]
pub struct CooSource {
    dims: [usize; NMODES],
    grid: [usize; NMODES],
    bounds: [Vec<usize>; NMODES],
    /// `(cell, entry range start)` per nonempty tile, plus one sentinel
    /// start so tile `i` owns `starts[i]..starts[i+1]`.
    cells: Vec<[usize; NMODES]>,
    starts: Vec<usize>,
    locals: Vec<[u32; NMODES]>,
    vals: Vec<f64>,
}

impl CooSource {
    /// Shards `coo` over `grid` tiles per original axis.
    ///
    /// # Panics
    /// Panics if any grid count is zero or exceeds the axis length (when
    /// the axis is non-empty) — the same precondition as `BcooTensor`.
    pub fn new(coo: &CooTensor, grid: [usize; NMODES]) -> Self {
        let dims = coo.dims();
        for ax in 0..NMODES {
            assert!(
                grid[ax] >= 1 && grid[ax] <= dims[ax].max(1),
                "grid count {} invalid for axis {ax} of length {}",
                grid[ax],
                dims[ax]
            );
        }
        let bounds = [
            crate::bcoo::uniform_bounds(dims[0], grid[0]),
            crate::bcoo::uniform_bounds(dims[1], grid[1]),
            crate::bcoo::uniform_bounds(dims[2], grid[2]),
        ];
        let cell_of = |ax: usize, idx: usize| bounds[ax].partition_point(|&b| b <= idx) - 1;
        let mut tagged: Vec<(u64, &Entry)> = coo
            .entries()
            .iter()
            .map(|e| {
                let c = [
                    cell_of(0, e.idx[0] as usize) as u64,
                    cell_of(1, e.idx[1] as usize) as u64,
                    cell_of(2, e.idx[2] as usize) as u64,
                ];
                // grid axes are tuner outputs; their product (the cell count) fits u64 — lint: allow(index-overflow)
                ((c[0] * grid[1] as u64 + c[1]) * grid[2] as u64 + c[2], e)
            })
            .collect();
        tagged.sort_unstable_by_key(|&(id, e)| (id, e.idx));

        let mut cells = Vec::new();
        let mut starts = Vec::new();
        let mut locals = Vec::with_capacity(tagged.len());
        let mut vals = Vec::with_capacity(tagged.len());
        let mut prev = None;
        for (n, &(id, e)) in tagged.iter().enumerate() {
            if prev != Some(id) {
                // grid[1]·grid[2] ≤ the cell count — lint: allow(index-overflow)
                let c0 = (id / (grid[1] as u64 * grid[2] as u64)) as usize;
                let c1 = ((id / grid[2] as u64) % grid[1] as u64) as usize;
                let c2 = (id % grid[2] as u64) as usize;
                cells.push([c0, c1, c2]);
                starts.push(n);
                prev = Some(id);
            }
            let cell = *cells.last().expect("just pushed");
            locals.push([
                e.idx[0] - bounds[0][cell[0]] as u32,
                e.idx[1] - bounds[1][cell[1]] as u32,
                e.idx[2] - bounds[2][cell[2]] as u32,
            ]);
            vals.push(e.val);
        }
        starts.push(tagged.len());
        CooSource {
            dims,
            grid,
            bounds,
            cells,
            starts,
            locals,
            vals,
        }
    }
}

impl TensorSource for CooSource {
    fn dims(&self) -> [usize; NMODES] {
        self.dims
    }
    fn nnz(&self) -> usize {
        self.vals.len()
    }
    fn grid(&self) -> [usize; NMODES] {
        self.grid
    }
    fn n_tiles(&self) -> usize {
        self.cells.len()
    }
    fn tile_cell(&self, i: usize) -> [usize; NMODES] {
        self.cells[i]
    }
    fn tile_nnz(&self, i: usize) -> usize {
        self.starts[i + 1] - self.starts[i]
    }
    fn load_tile(&self, i: usize) -> Result<SourceTile, BinError> {
        let cell = self.cells[i];
        let range = self.starts[i]..self.starts[i + 1];
        Ok(SourceTile {
            cell,
            origin: [
                self.bounds[0][cell[0]],
                self.bounds[1][cell[1]],
                self.bounds[2][cell[2]],
            ],
            locals: self.locals[range.clone()].to_vec(),
            vals: self.vals[range].to_vec(),
        })
    }
}

/// A [`BcooTensor`] served as tiles. The BCOO layout is kernel-axis
/// ordered for one mode; this adapter translates block coordinates and
/// local offsets back to original axes through the layout's `perm`, so
/// the streaming driver can reuse a block-native tensor for all three
/// modes without rebuilding it.
#[derive(Debug, Clone)]
pub struct BcooSource {
    t: BcooTensor,
}

impl BcooSource {
    /// Wraps an existing block-native tensor.
    pub fn new(t: BcooTensor) -> Self {
        BcooSource { t }
    }

    /// The wrapped layout.
    pub fn inner(&self) -> &BcooTensor {
        &self.t
    }
}

impl TensorSource for BcooSource {
    fn dims(&self) -> [usize; NMODES] {
        self.t.dims()
    }
    fn nnz(&self) -> usize {
        self.t.nnz()
    }
    fn grid(&self) -> [usize; NMODES] {
        let perm = self.t.perm();
        let mut g = [0usize; NMODES];
        for ax in 0..NMODES {
            g[perm[ax]] = self.t.grid()[ax];
        }
        g
    }
    fn n_tiles(&self) -> usize {
        self.t.n_blocks()
    }
    fn tile_cell(&self, i: usize) -> [usize; NMODES] {
        let perm = self.t.perm();
        let b = self.t.block(i);
        let mut c = [0usize; NMODES];
        for ax in 0..NMODES {
            c[perm[ax]] = b.coords[ax] as usize;
        }
        c
    }
    fn tile_nnz(&self, i: usize) -> usize {
        self.t.block_range(i).len()
    }
    fn load_tile(&self, i: usize) -> Result<SourceTile, BinError> {
        let perm = self.t.perm();
        let b = self.t.block(i);
        let range = self.t.block_range(i);
        let mut cell = [0usize; NMODES];
        let mut origin = [0usize; NMODES];
        for ax in 0..NMODES {
            cell[perm[ax]] = b.coords[ax] as usize;
            origin[perm[ax]] = b.origin[ax] as usize;
        }
        let n = range.len();
        let mut locals = Vec::with_capacity(n);
        let to_orig = |l: [u32; NMODES]| {
            let mut o = [0u32; NMODES];
            for ax in 0..NMODES {
                o[perm[ax]] = l[ax];
            }
            o
        };
        match self.t.offsets() {
            BcooOffsets::U8(o) => {
                locals.extend(o[range.clone()].iter().map(|l| to_orig(l.map(u32::from))))
            }
            BcooOffsets::U16(o) => {
                locals.extend(o[range.clone()].iter().map(|l| to_orig(l.map(u32::from))))
            }
            BcooOffsets::U32(o) => locals.extend(o[range.clone()].iter().map(|&l| to_orig(l))),
        }
        Ok(SourceTile {
            cell,
            origin,
            locals,
            vals: self.t.vals()[range].to_vec(),
        })
    }
}

impl TensorSource for TileStore {
    fn dims(&self) -> [usize; NMODES] {
        TileStore::dims(self)
    }
    fn nnz(&self) -> usize {
        TileStore::nnz(self)
    }
    fn grid(&self) -> [usize; NMODES] {
        TileStore::grid(self)
    }
    fn n_tiles(&self) -> usize {
        TileStore::n_tiles(self)
    }
    fn tile_cell(&self, i: usize) -> [usize; NMODES] {
        self.tile(i).cell.map(|c| c as usize)
    }
    fn tile_nnz(&self, i: usize) -> usize {
        self.tile(i).nnz as usize
    }
    fn tile_bytes(&self, i: usize) -> u64 {
        self.tile(i).len
    }
    fn tile_offset(&self, i: usize) -> u64 {
        self.tile(i).off
    }
    fn load_tile(&self, i: usize) -> Result<SourceTile, BinError> {
        TileStore::load_tile(self, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{clustered_tensor, uniform_tensor, ClusteredConfig};

    /// Streams every tile back to entries and compares against the COO.
    fn assert_source_matches(src: &dyn TensorSource, coo: &CooTensor) {
        assert_eq!(src.dims(), coo.dims());
        assert_eq!(src.nnz(), coo.nnz());
        let mut entries = Vec::with_capacity(src.nnz());
        let mut prev_cell = None;
        for i in 0..src.n_tiles() {
            let tile = src.load_tile(i).unwrap();
            assert_eq!(tile.cell, src.tile_cell(i));
            assert_eq!(tile.nnz(), src.tile_nnz(i));
            assert!(tile.nnz() > 0, "sources never serve empty tiles");
            assert_ne!(prev_cell, Some(tile.cell), "tile cells are distinct");
            prev_cell = Some(tile.cell);
            for (l, &v) in tile.locals.iter().zip(&tile.vals) {
                entries.push(Entry {
                    idx: [
                        (tile.origin[0] + l[0] as usize) as u32,
                        (tile.origin[1] + l[1] as usize) as u32,
                        (tile.origin[2] + l[2] as usize) as u32,
                    ],
                    val: v,
                });
            }
        }
        assert_eq!(&CooTensor::from_entries(coo.dims(), entries), coo);
    }

    #[test]
    fn coo_source_round_trips() {
        let t = uniform_tensor([40, 30, 20], 800, 7);
        assert_source_matches(&CooSource::new(&t, [4, 3, 2]), &t);
    }

    #[test]
    fn bcoo_source_round_trips_for_every_mode() {
        let cfg = ClusteredConfig::new([48, 36, 24], 1_000);
        let t = clustered_tensor(&cfg, 3);
        for mode in 0..NMODES {
            let b = BcooTensor::from_coo(&t, mode, [3, 3, 2]);
            assert_source_matches(&BcooSource::new(b), &t);
        }
    }

    #[test]
    fn tile_store_source_round_trips() {
        let t = uniform_tensor([32, 32, 32], 600, 9);
        let dir = std::env::temp_dir().join(format!("tenblock_source_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = TileStore::create_from_coo(&t, [2, 4, 2], dir.join("s.tnsb")).unwrap();
        assert_source_matches(&store, &t);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn coo_and_bcoo_sources_agree_on_tile_extents() {
        // For mode 0 the BCOO perm is the identity, so cells and tiles
        // line up one-to-one with the COO sharding of the same grid.
        let t = uniform_tensor([20, 20, 20], 500, 21);
        let coo_src = CooSource::new(&t, [2, 2, 2]);
        let bcoo_src = BcooSource::new(BcooTensor::from_coo(&t, 0, [2, 2, 2]));
        assert_eq!(coo_src.n_tiles(), bcoo_src.n_tiles());
        for i in 0..coo_src.n_tiles() {
            assert_eq!(coo_src.tile_cell(i), bcoo_src.tile_cell(i));
            assert_eq!(coo_src.tile_nnz(i), bcoo_src.tile_nnz(i));
        }
        assert_eq!(coo_src.total_tile_bytes(), bcoo_src.total_tile_bytes());
    }
}
