//! Strong scaling of the simulated distributed MTTKRP: medium-grained 3D
//! versus the paper's 4D (rank-split) partitioning, 1-64 nodes.
//!
//! Run: `cargo run --release --example distributed_scaling`

use tenblock::dist::{best_3d, best_4d, DistConfig};
use tenblock::tensor::gen::Dataset;

fn main() {
    let x = Dataset::Nell2.generate_with([3_000, 2_200, 7_000], 400_000, 5);
    println!(
        "strong scaling on a NELL-2-shaped tensor: {:?}, {} nnz, rank 64",
        x.dims(),
        x.nnz()
    );
    println!(
        "{:>6} {:>12} {:>10} {:>16} {:>10} {:>10}",
        "nodes", "3D grid", "3D (s)", "4D grid", "4D (s)", "4D comm(s)"
    );

    let cfg = DistConfig::new(64); // blocked local kernel by default
    for nodes in [1usize, 2, 4, 8, 16, 32, 64] {
        let p = 2 * nodes;
        let r3 = best_3d(&x, &cfg, p);
        let r4 = best_4d(&x, &cfg, p);
        println!(
            "{:>6} {:>12} {:>10.4} {:>16} {:>10.4} {:>10.6}",
            nodes,
            format!("{}x{}x{}", r3.grid[0], r3.grid[1], r3.grid[2]),
            r3.total_secs,
            format!(
                "{}x{}x{}x{}",
                r4.grid[0], r4.grid[1], r4.grid[2], r4.grid[3]
            ),
            r4.total_secs,
            r4.comm_secs
        );
    }
    println!(
        "\nThe 4D partitioning trades memory (t tensor replicas) for \
         communication: each rank keeps t*nnz/p nonzeros and collectives \
         shrink by the rank-split factor."
    );
}
