//! Higher-order MTTKRP via CSF — the "trivially extended to higher-order
//! data" path (Section III-C of the paper): a 4-mode
//! (user, action, object, day) tensor, MTTKRP for every mode, with rank
//! blocking.
//!
//! Run: `cargo run --release --example higher_order`

#![allow(clippy::needless_range_loop)]

use std::time::Instant;
use tenblock::core::mttkrp::{nd_mttkrp_reference, CsfKernel};
use tenblock::tensor::nd::uniform_nd;
use tenblock::tensor::DenseMatrix;

fn main() {
    let dims = vec![2_000usize, 40, 1_500, 365];
    let x = uniform_nd(&dims, 200_000, 23);
    let rank = 32;
    println!("4-mode tensor {:?}, {} nnz, rank {rank}", x.dims(), x.nnz());

    let factors: Vec<DenseMatrix> = dims
        .iter()
        .map(|&d| DenseMatrix::from_fn(d, rank, |r, c| ((r * 3 + c) % 17) as f64 * 0.05))
        .collect();
    let frefs: Vec<&DenseMatrix> = factors.iter().collect();

    for mode in 0..4 {
        // plain CSF traversal ...
        let k = CsfKernel::new(&x, mode);
        let mut out = DenseMatrix::zeros(dims[mode], rank);
        let t0 = Instant::now();
        k.mttkrp(&frefs, &mut out);
        let plain = t0.elapsed().as_secs_f64();

        // ... vs the same tree with rank blocking (Section V-B)
        let kb = CsfKernel::new(&x, mode).with_strip_width(16);
        let mut out_b = DenseMatrix::zeros(dims[mode], rank);
        let t0 = Instant::now();
        kb.mttkrp(&frefs, &mut out_b);
        let blocked = t0.elapsed().as_secs_f64();

        assert!(out.approx_eq(&out_b, 1e-10));
        println!(
            "mode {mode}: CSF {plain:.4} s, CSF+RankB(16) {blocked:.4} s ({:.2}x)",
            plain / blocked
        );
    }
    println!(
        "(rank blocking re-traverses the CSF tree once per strip; it pays off \
         when the factor matrices spill the cache, and costs tree overhead \
         when they do not — the Section V-C heuristic exists precisely to \
         make that call per tensor)"
    );

    // spot-check against the brute-force reference on a small slice
    let small = uniform_nd(&[50, 20, 40, 30], 2_000, 7);
    let sf: Vec<DenseMatrix> = small
        .dims()
        .iter()
        .map(|&d| DenseMatrix::from_fn(d, 8, |r, c| ((r + c) % 5) as f64))
        .collect();
    let sfr: Vec<&DenseMatrix> = sf.iter().collect();
    let expect = nd_mttkrp_reference(&small, &sfr, 2);
    let k = CsfKernel::new(&small, 2);
    let mut got = DenseMatrix::zeros(40, 8);
    k.mttkrp(&sfr, &mut got);
    assert!(expect.approx_eq(&got, 1e-10));
    println!("\nCSF kernel verified against the brute-force N-mode reference");
}
