//! Pressure-point analysis + cache simulation on one tensor: reproduce the
//! Section IV methodology end-to-end at example scale.
//!
//! Run: `cargo run --release --example pressure_points`

use tenblock::analysis::roofline::arithmetic_intensity;
use tenblock::analysis::trace::{trace_kernel, TraceKernel};
use tenblock::analysis::{run_ppa, CacheSim};
use tenblock::tensor::gen::Dataset;

fn main() {
    let x = Dataset::Poisson3.generate_with([2_000, 2_000, 2_000], 300_000, 9);
    let rank = 64;
    println!("tensor {:?}, {} nnz, rank {rank}\n", x.dims(), x.nnz());

    // 1. Table I: where does the time go?
    println!("pressure points (Table I methodology):");
    let results = run_ppa(&x, 0, rank, 2);
    let base = results.last().unwrap().secs;
    for r in &results {
        println!(
            "  type {}: {:>8.4} s ({:>+6.1}%)  {}",
            r.variant.type_no(),
            r.secs,
            (r.secs / base - 1.0) * 100.0,
            r.variant.description()
        );
    }

    // 2. The cache simulator explains why: measure alpha with and without
    // blocking and map it onto the Figure 2 intensity curve.
    println!("\nmeasured cache behaviour (POWER8 model):");
    let small = Dataset::Poisson3.generate_with([2_000, 2_000, 2_000], 40_000, 9);
    for (name, k) in [
        ("SPLATT  ", TraceKernel::Splatt),
        ("blocked ", TraceKernel::MbRankB([4, 4, 2], 16)),
    ] {
        let t = trace_kernel(&small, 0, rank, k, CacheSim::power8(4));
        println!(
            "  {name}: alpha = {:.3} -> arithmetic intensity {:.2} flop/byte",
            t.alpha_factors,
            arithmetic_intensity(rank as u64, t.alpha_factors)
        );
    }
    println!(
        "\nBlocking raises alpha, which raises the attainable fraction of the \
         roofline — the mechanism behind the paper's speedups."
    );
}
