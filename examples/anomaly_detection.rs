//! Network-traffic anomaly detection with Poisson tensor factorization —
//! one of the motivating applications from the paper's introduction
//! ("network intrusion detection"): a (source, destination, time) count
//! tensor is decomposed with CP-APR; flows that the low-rank model cannot
//! explain are flagged.
//!
//! Run: `cargo run --release --example anomaly_detection`

use tenblock::core::{KernelConfig, KernelKind};
use tenblock::cpd::{cp_apr, CpAprOptions};
use tenblock::tensor::gen::{poisson_tensor, PoissonConfig};
use tenblock::tensor::{CooTensor, Entry};

fn main() {
    // Normal traffic: a low-rank Poisson process over (src, dst, hour).
    let cfg = PoissonConfig::new([400, 400, 24], 40_000);
    let normal = poisson_tensor(&cfg, 17);

    // Inject anomalies: scattered high-volume flows at incoherent
    // (src, dst, hour) triples — unlike a block-structured scan, scattered
    // spikes have no low-rank explanation, which is what Poisson tensor
    // models flag.
    let mut entries: Vec<Entry> = normal.entries().to_vec();
    let n_anomalies = 25u32;
    let mut anomalous: Vec<[u32; 3]> = Vec::new();
    for i in 0..n_anomalies {
        // deterministic scattered coordinates
        let src = (i * 151 + 7) % 400;
        let dst = (i * 211 + 91) % 400;
        let hour = (i * 13 + 5) % 24;
        anomalous.push([src, dst, hour]);
        entries.push(Entry::new(src, dst, hour, 60.0));
    }
    let x = CooTensor::from_entries(normal.dims(), entries);
    println!(
        "traffic tensor: {:?}, {} nonzero flows ({n_anomalies} injected anomalies)",
        x.dims(),
        x.nnz(),
    );

    // Fit the Poisson model with the blocked MTTKRP kernel.
    let mut opts = CpAprOptions::new(8);
    opts.max_iters = 25;
    opts.kernel = KernelKind::MbRankB;
    opts.kernel_cfg = KernelConfig {
        grid: [2, 2, 1],
        strip_width: 16,
        ..Default::default()
    };
    let result = cp_apr(&x, &opts);
    println!(
        "CP-APR: {} iterations, log-likelihood {:.1}",
        result.iterations,
        result.loglik_history.last().unwrap()
    );

    // Score each flow by its Poisson surprise: x * ln(x/m) - (x - m).
    let mut scored: Vec<(f64, &Entry)> = x
        .entries()
        .iter()
        .map(|e| {
            let m = result
                .model
                .value_at(e.idx[0] as usize, e.idx[1] as usize, e.idx[2] as usize)
                .max(1e-12);
            let s = e.val * (e.val / m).ln() - (e.val - m);
            (s, e)
        })
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));

    let top_n = n_anomalies as usize;
    println!("\ntop {top_n} most surprising flows:");
    let mut hits = 0;
    for (s, e) in scored.iter().take(top_n) {
        let injected = anomalous.contains(&e.idx);
        if injected {
            hits += 1;
        }
        println!(
            "  src {:>4} -> dst {:>4} @ hour {:>2}: count {:>5}  surprise {:>8.1} {}",
            e.idx[0],
            e.idx[1],
            e.idx[2],
            e.val,
            s,
            if injected { "<-- injected" } else { "" }
        );
    }
    let recall = hits as f64 / n_anomalies as f64;
    println!(
        "\nrecall@{top_n} on the injected anomalies: {:.0}%",
        recall * 100.0
    );
    assert!(
        recall >= 0.6,
        "detector should surface the injected anomalies"
    );
}
