//! The Section V-C heuristic in action: automatic selection of the MB grid
//! and RankB strip width for a tensor, with the full search trace.
//!
//! Run: `cargo run --release --example autotune`

use tenblock::core::{tune, TuneOptions};
use tenblock::tensor::gen::Dataset;

fn main() {
    let x = Dataset::Poisson2.generate_with([1_000, 8_000, 1_000], 400_000, 3);
    println!(
        "tuning mode-1 MTTKRP blocking for a {}x{}x{} tensor, {} nnz",
        x.dims()[0],
        x.dims()[1],
        x.dims()[2],
        x.nnz()
    );

    let mut opts = TuneOptions::new(128);
    opts.reps = 2;
    let t0 = std::time::Instant::now();
    let result = tune(&x, 0, &opts);
    let tune_secs = t0.elapsed().as_secs_f64();

    println!("\nsearch trace ({} candidates):", result.history.len());
    for s in &result.history {
        println!(
            "  grid {:>2}x{:>2}x{:>2}  strip {:>3}  ->  {:.4} s",
            s.grid[0], s.grid[1], s.grid[2], s.strip_width, s.secs
        );
    }
    println!(
        "\nselected: grid {}x{}x{}, strip width {} ({:.4} s per MTTKRP)",
        result.grid[0], result.grid[1], result.grid[2], result.strip_width, result.best_secs
    );
    println!(
        "search cost: {tune_secs:.2} s — amortized over the 10-1000s of MTTKRP \
         calls of a CP decomposition (Section V-C)"
    );
}
