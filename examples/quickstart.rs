//! Quickstart: build a sparse tensor, run the baseline SPLATT MTTKRP and
//! the blocked MTTKRP, and verify they agree while the blocked one reads
//! less memory.
//!
//! Run: `cargo run --release --example quickstart`

use std::time::Instant;
use tenblock::core::block::MbRankBKernel;
use tenblock::core::mttkrp::SplattKernel;
use tenblock::core::MttkrpKernel;
use tenblock::tensor::gen::{clustered_tensor, ClusteredConfig};
use tenblock::tensor::{DenseMatrix, TensorStats};

fn main() {
    // 1. A sparse 3-mode tensor with clustered structure (like real data).
    let cfg = ClusteredConfig::new([4_000, 6_000, 3_000], 500_000);
    let x = clustered_tensor(&cfg, 7);
    let stats = TensorStats::of(&x);
    println!("tensor: {}", stats.table_row("demo"));

    // 2. Factor matrices for a rank-64 decomposition.
    let rank = 64;
    let factors: Vec<DenseMatrix> = x
        .dims()
        .iter()
        .map(|&d| DenseMatrix::from_fn(d, rank, |r, c| ((r * 31 + c * 7) % 100) as f64 / 100.0))
        .collect();
    let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];

    // 3. The baseline SPLATT kernel (Algorithm 1 of the paper) ...
    let baseline = SplattKernel::new(&x, 0);
    let mut out_base = DenseMatrix::zeros(x.dims()[0], rank);
    let t0 = Instant::now();
    baseline.mttkrp(&fs, &mut out_base);
    let base_secs = t0.elapsed().as_secs_f64();

    // 4. ... versus multi-dimensional + rank blocking (Section V).
    let blocked = MbRankBKernel::new(&x, 0, [2, 4, 2], rank);
    let mut out_blocked = DenseMatrix::zeros(x.dims()[0], rank);
    let t0 = Instant::now();
    blocked.mttkrp(&fs, &mut out_blocked);
    let blocked_secs = t0.elapsed().as_secs_f64();

    // 5. Same math, less memory traffic.
    assert!(out_base.approx_eq(&out_blocked, 1e-9), "kernels disagree!");
    println!("SPLATT baseline : {base_secs:.4} s");
    println!(
        "MB+RankB        : {blocked_secs:.4} s  ({:.2}x)",
        base_secs / blocked_secs
    );
    println!("results agree to 1e-9 relative tolerance");
}
