//! CP decomposition of a recommender-style (user x item x time) count
//! tensor — the Netflix-shaped workload that motivates the paper — using
//! the blocked MTTKRP kernel inside CP-ALS.
//!
//! Run: `cargo run --release --example cpd_recommender`

use tenblock::core::{ExecPolicy, KernelConfig, KernelKind};
use tenblock::cpd::{CpAls, CpAlsOptions};
use tenblock::tensor::gen::Dataset;

fn main() {
    // A scaled Netflix analogue: tall user mode, tiny time mode.
    let x = Dataset::Netflix.generate_with([12_000, 3_000, 80], 300_000, 11);
    println!(
        "decomposing a {}x{}x{} tensor with {} nonzeros (Netflix-shaped)",
        x.dims()[0],
        x.dims()[1],
        x.dims()[2],
        x.nnz()
    );

    let mut opts = CpAlsOptions::new(16);
    opts.max_iters = 15;
    opts.tol = 1e-4;
    opts.kernel = KernelKind::MbRankB;
    opts.kernel_cfg = KernelConfig {
        grid: [4, 2, 1],
        strip_width: 16,
        exec: ExecPolicy::auto(),
    };

    let t0 = std::time::Instant::now();
    let als = CpAls::new(&x, opts);
    let result = als.run(&x);
    let secs = t0.elapsed().as_secs_f64();

    println!(
        "kernel {}, {} iterations in {:.2} s (converged: {})",
        als.kernel_name(),
        result.iterations,
        secs,
        result.converged
    );
    for (it, fit) in result.fit_history.iter().enumerate() {
        println!("  iter {:>2}: fit {fit:.5}", it + 1);
    }

    // The dominant components by weight — in a recommender, these are the
    // strongest (user-group, item-group, time-pattern) co-clusters.
    let mut weights: Vec<(usize, f64)> = result.model.lambda.iter().copied().enumerate().collect();
    weights.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top components by weight:");
    for (r, w) in weights.iter().take(5) {
        println!("  component {r:>2}: lambda = {w:.3}");
    }
}
