//! Property tests for the higher-order (N-mode) path: CSF round-trips and
//! kernel agreement with the brute-force reference, plus the fused
//! all-mode MTTKRP against separate kernels.

use proptest::prelude::*;
use tenblock::core::mttkrp::{nd_mttkrp_reference, AllModeKernel, CsfKernel, SplattKernel};
use tenblock::core::MttkrpKernel;
use tenblock::tensor::{CooTensor, CsfTensor, DenseMatrix, Entry, NdCooTensor};

/// Strategy: a random N-mode tensor (order 2-5, small dims).
fn arb_nd() -> impl Strategy<Value = NdCooTensor> {
    (2usize..=5).prop_flat_map(|order| {
        proptest::collection::vec(2usize..8, order).prop_flat_map(move |dims| {
            let coord = dims
                .iter()
                .map(|&d| (0..d as u32).boxed())
                .collect::<Vec<_>>();
            let entry = (coord, -4.0f64..4.0);
            proptest::collection::vec(entry, 0..50).prop_map(move |es| {
                let mut coords = Vec::new();
                let mut vals = Vec::new();
                for (c, v) in es {
                    coords.extend_from_slice(&c);
                    vals.push(v);
                }
                NdCooTensor::from_flat(dims.clone(), coords, vals)
            })
        })
    })
}

fn seeded_factors(dims: &[usize], rank: usize, seed: u64) -> Vec<DenseMatrix> {
    dims.iter()
        .enumerate()
        .map(|(m, &d)| {
            DenseMatrix::from_fn(d, rank, |r, c| {
                let mut h = seed ^ ((r as u64) << 13) ^ ((c as u64) << 3) ^ (m as u64);
                h ^= h >> 30;
                h = h.wrapping_mul(0xbf58476d1ce4e5b9);
                h ^= h >> 27;
                (h % 2000) as f64 / 1000.0 - 1.0
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn csf_roundtrips_any_root(x in arb_nd(), root_raw in 0usize..5) {
        let root = root_raw % x.order();
        let csf = CsfTensor::for_mode(&x, root);
        prop_assert_eq!(csf.to_nd(), x);
    }

    #[test]
    fn csf_kernel_matches_reference(
        x in arb_nd(),
        root_raw in 0usize..5,
        rank in 1usize..12,
        width in 1usize..20,
        seed in proptest::num::u64::ANY,
    ) {
        let root = root_raw % x.order();
        let factors = seeded_factors(x.dims(), rank, seed);
        let frefs: Vec<&DenseMatrix> = factors.iter().collect();
        let expect = nd_mttkrp_reference(&x, &frefs, root);
        let k = CsfKernel::new(&x, root).with_strip_width(width);
        let mut out = DenseMatrix::zeros(x.dims()[root], rank);
        k.mttkrp(&frefs, &mut out);
        prop_assert!(
            expect.approx_eq(&out, 1e-9),
            "order {} root {root} width {width}: diff {}",
            x.order(),
            expect.max_abs_diff(&out)
        );
    }

    #[test]
    fn allmode_matches_separate_kernels(
        dims0 in 2usize..10,
        dims1 in 2usize..10,
        dims2 in 2usize..10,
        rank in 1usize..10,
        seed in proptest::num::u64::ANY,
        entries in proptest::collection::vec((0u32..10, 0u32..10, 0u32..10, -3.0f64..3.0), 0..60),
    ) {
        let dims = [dims0, dims1, dims2];
        let es: Vec<Entry> = entries
            .into_iter()
            .map(|(i, j, k, v)| {
                Entry::new(i % dims0 as u32, j % dims1 as u32, k % dims2 as u32, v)
            })
            .collect();
        let x = CooTensor::from_entries(dims, es);
        let factors = seeded_factors(&dims, rank, seed);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];

        let fused = AllModeKernel::new(&x);
        let mut outs = [
            DenseMatrix::zeros(dims0, rank),
            DenseMatrix::zeros(dims1, rank),
            DenseMatrix::zeros(dims2, rank),
        ];
        fused.mttkrp_all(&fs, &mut outs);
        for mode in 0..3 {
            let k = SplattKernel::new(&x, mode);
            let mut expect = DenseMatrix::zeros(dims[mode], rank);
            k.mttkrp(&fs, &mut expect);
            prop_assert!(expect.approx_eq(&outs[mode], 1e-9), "mode {mode} mismatch");
        }
    }

    #[test]
    fn binary_io_roundtrips_nd(x in arb_nd()) {
        let mut buf = Vec::new();
        tenblock::tensor::io_bin::write_bin_nd(&x, &mut buf).unwrap();
        let back = tenblock::tensor::io_bin::read_bin_nd(buf.as_slice()).unwrap();
        prop_assert_eq!(back, x);
    }
}
