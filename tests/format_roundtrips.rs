//! Format round-trip properties: COO -> SPLATT -> COO and COO -> .tns ->
//! COO preserve every nonzero, for every orientation.

use proptest::prelude::*;
use tenblock::tensor::coo::perm_for_mode;
use tenblock::tensor::{io, CooTensor, Entry, SplattTensor};

fn arb_tensor() -> impl Strategy<Value = CooTensor> {
    (1usize..15, 1usize..15, 1usize..15).prop_flat_map(|(i, j, k)| {
        let entry = (0..i as u32, 0..j as u32, 0..k as u32, -100.0f64..100.0)
            .prop_map(|(a, b, c, v)| Entry::new(a, b, c, v));
        proptest::collection::vec(entry, 0..80)
            .prop_map(move |es| CooTensor::from_entries([i, j, k], es))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn splatt_roundtrip_every_mode(x in arb_tensor(), mode in 0usize..3) {
        let t = SplattTensor::for_mode(&x, mode);
        prop_assert_eq!(t.nnz(), x.nnz());
        let mut back = t.to_entries();
        back.sort_unstable_by_key(|e| e.idx);
        let mut orig = x.entries().to_vec();
        orig.sort_unstable_by_key(|e| e.idx);
        prop_assert_eq!(back, orig);
        // fiber count matches the COO-side count
        prop_assert_eq!(t.n_fibers(), x.count_fibers(perm_for_mode(mode)));
    }

    #[test]
    fn compressed_splatt_roundtrip(x in arb_tensor(), mode in 0usize..3) {
        let t = SplattTensor::from_entries_compressed(
            x.dims(),
            perm_for_mode(mode),
            x.entries().to_vec(),
        );
        let mut back = t.to_entries();
        back.sort_unstable_by_key(|e| e.idx);
        let mut orig = x.entries().to_vec();
        orig.sort_unstable_by_key(|e| e.idx);
        prop_assert_eq!(back, orig);
        // every stored slice is non-empty
        for s in 0..t.n_slices() {
            prop_assert!(!t.slice_fibers(s).is_empty());
        }
    }

    #[test]
    fn tns_roundtrip(x in arb_tensor()) {
        let mut buf = Vec::new();
        io::write_tns(&x, &mut buf).unwrap();
        let back = io::read_tns(buf.as_slice()).unwrap();
        prop_assert_eq!(back.nnz(), x.nnz());
        for (a, b) in back.entries().iter().zip(x.entries()) {
            prop_assert_eq!(a.idx, b.idx);
            // text round-trip preserves f64 exactly via shortest-repr printing
            prop_assert_eq!(a.val, b.val);
        }
    }

    #[test]
    fn splatt_memory_model_consistency(x in arb_tensor()) {
        let t = SplattTensor::for_mode(&x, 0);
        // paper model: 16 + 8I + 16F + 16nnz with 64-bit everything
        let expect = 16 + 8 * t.n_slices() + 16 * t.n_fibers() + 16 * t.nnz();
        prop_assert_eq!(t.paper_bytes(), expect);
        // our u32 indices make the real footprint smaller than the model
        // for non-trivial tensors
        if t.nnz() > 8 {
            prop_assert!(t.actual_bytes() < expect + 8 * t.n_slices());
        }
    }
}
