//! Property tests for the analysis substrate: the cache simulator against
//! a reference stack-distance LRU model, and communication-model laws.

use proptest::prelude::*;
use tenblock::analysis::{CacheConfig, CacheSim};
use tenblock::dist::CommParams;

/// Reference fully-associative LRU: hit iff the line's reuse stack distance
/// is below capacity.
fn reference_lru(line_addrs: &[u64], capacity_lines: usize) -> (u64, u64) {
    let mut stack: Vec<u64> = Vec::new();
    let (mut hits, mut misses) = (0u64, 0u64);
    for &a in line_addrs {
        if let Some(pos) = stack.iter().position(|&x| x == a) {
            hits += 1;
            stack.remove(pos);
        } else {
            misses += 1;
            if stack.len() == capacity_lines {
                stack.remove(0);
            }
        }
        stack.push(a);
    }
    (hits, misses)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A single-set (fully associative) simulator level must agree exactly
    /// with the reference stack-distance model.
    #[test]
    fn fully_associative_matches_stack_distance(
        addrs in proptest::collection::vec(0u64..64, 1..400),
        assoc in 1usize..16,
    ) {
        let line = 64u64;
        let cfg = CacheConfig { size: 64 * assoc, line: 64, assoc };
        prop_assert_eq!(cfg.n_sets(), 1);
        let mut sim = CacheSim::new(&[cfg], 1);
        for &a in &addrs {
            sim.access(a * line, 0);
        }
        let (hits, misses) = reference_lru(&addrs, assoc);
        let s = sim.level_stats(0);
        prop_assert_eq!((s.hits, s.misses), (hits, misses));
    }

    /// Adding capacity can only help a fully-associative LRU (inclusion
    /// property of LRU stacks).
    #[test]
    fn lru_inclusion_property(
        addrs in proptest::collection::vec(0u64..128, 1..300),
        assoc in 1usize..12,
    ) {
        let small = reference_lru(&addrs, assoc);
        let large = reference_lru(&addrs, assoc + 1);
        prop_assert!(large.0 >= small.0, "more capacity lost hits");
    }

    /// Cache accesses are conserved: hits + misses at L1 equals the number
    /// of distinct-line accesses issued, and every L2 access is an L1 miss.
    #[test]
    fn hierarchy_conservation(
        addrs in proptest::collection::vec(0u64..10_000, 1..500),
    ) {
        let mut sim = CacheSim::new(
            &[
                CacheConfig { size: 1024, line: 64, assoc: 2 },
                CacheConfig { size: 4096, line: 64, assoc: 4 },
            ],
            1,
        );
        for &a in &addrs {
            sim.access(a * 64, 0);
        }
        let l1 = sim.level_stats(0);
        let l2 = sim.level_stats(1);
        prop_assert_eq!(l1.hits + l1.misses, addrs.len() as u64);
        prop_assert_eq!(l2.hits + l2.misses, l1.misses);
        prop_assert_eq!(sim.memory_bytes(), l2.misses * 64);
    }

    /// Communication cost model laws: non-negativity, monotonicity in
    /// volume, and free single-rank collectives.
    #[test]
    fn comm_model_laws(
        p in 1usize..256,
        bytes in 0.0f64..1e9,
        extra in 1.0f64..1e6,
    ) {
        let c = CommParams::cluster_2018();
        let t = c.allgather(p, bytes);
        prop_assert!(t >= 0.0);
        prop_assert!(c.allgather(p, bytes + extra) >= t);
        prop_assert_eq!(c.allgather(1, bytes), 0.0);
        prop_assert!(c.allreduce(p, bytes) >= c.reduce_scatter(p, bytes));
        prop_assert!(c.ptp(bytes) >= c.ptp(0.0));
    }
}
