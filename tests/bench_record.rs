//! Properties of the benchmark record schema and the regression
//! comparator: round-trips, tolerance edges, and gate consistency.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tenblock_bench::suite::{
    compare, suite_tensors, BenchEntry, BenchRecord, CompareOptions, MachineInfo, SuiteOptions,
    Verdict, SCHEMA_VERSION,
};

fn machine(host: &str) -> MachineInfo {
    MachineInfo {
        host: host.to_string(),
        cpus: 8,
        os: "linux".to_string(),
    }
}

fn entry(id: &str, min_secs: f64) -> BenchEntry {
    BenchEntry {
        id: id.to_string(),
        group: id.split('/').next().unwrap_or("kernel").to_string(),
        min_secs,
        mean_secs: min_secs * 1.25,
        stddev_secs: min_secs * 0.05,
        reps: 3,
        nnz: 60_000,
        tensor_bytes: 1_200_000,
        extra: BTreeMap::new(),
    }
}

fn record(host: &str, entries: Vec<BenchEntry>) -> BenchRecord {
    BenchRecord {
        schema: SCHEMA_VERSION,
        suite: "pinned".to_string(),
        created_unix: 1_754_000_000,
        commit: "abc1234".to_string(),
        machine: machine(host),
        entries,
    }
}

#[test]
fn record_round_trips_through_file_format() {
    let mut e = entry("kernel/clustered/serial/splatt", 0.004);
    e.extra.insert("bytes_per_nnz".to_string(), 21.5);
    let r = record(
        "ci-host",
        vec![e, entry("stream/clustered/serial/mttkrp", 0.012)],
    );
    let parsed = BenchRecord::parse(&r.to_file_string()).expect("round-trip parse");
    assert_eq!(parsed, r);
}

#[test]
fn foreign_schema_versions_are_rejected() {
    let mut r = record("h", vec![entry("kernel/a/serial/coo", 0.001)]);
    r.schema = SCHEMA_VERSION + 1;
    let err = BenchRecord::parse(&r.to_file_string()).expect_err("wrong schema must fail");
    assert!(err.contains("schema"), "{err}");
}

#[test]
fn exact_tolerance_boundary_is_not_a_regression() {
    // tolerance 0.25 with power-of-two-friendly times: ratio exactly 1.25
    // must pass (strictly-greater gate), the next representable step fails.
    let opts = CompareOptions {
        tolerance: 0.25,
        min_gate_secs: 50e-6,
    };
    let base = record("h", vec![entry("kernel/a/serial/coo", 4.0)]);
    let at_boundary = record("h", vec![entry("kernel/a/serial/coo", 5.0)]);
    let over = record("h", vec![entry("kernel/a/serial/coo", 5.0 + 1e-9)]);
    assert!(compare(&base, &at_boundary, &opts).gate().is_ok());
    let report = compare(&base, &over, &opts);
    assert_eq!(report.regressed(), vec!["kernel/a/serial/coo"]);
    assert!(report.gate().is_err());
}

#[test]
fn removed_entries_fail_the_gate_and_added_ones_do_not() {
    let opts = CompareOptions::default();
    let base = record(
        "h",
        vec![
            entry("kernel/a/serial/coo", 0.01),
            entry("kernel/a/serial/splatt", 0.01),
        ],
    );
    let missing = record("h", vec![entry("kernel/a/serial/coo", 0.01)]);
    let report = compare(&base, &missing, &opts);
    assert_eq!(report.removed(), vec!["kernel/a/serial/splatt"]);
    assert!(report.gate().is_err(), "coverage loss must fail");

    let grown = record(
        "h",
        vec![
            entry("kernel/a/serial/coo", 0.01),
            entry("kernel/a/serial/splatt", 0.01),
            entry("kernel/a/serial/newkernel", 0.02),
        ],
    );
    let report = compare(&base, &grown, &opts);
    assert!(report
        .lines
        .iter()
        .any(|l| l.id == "kernel/a/serial/newkernel" && l.verdict == Verdict::Added));
    assert!(report.gate().is_ok(), "additions are informational");
}

#[test]
fn zero_time_entries_are_advisory_not_a_division() {
    let opts = CompareOptions::default();
    let base = record("h", vec![entry("kernel/empty/serial/coo", 0.0)]);
    let cur = record("h", vec![entry("kernel/empty/serial/coo", 0.5)]);
    let report = compare(&base, &cur, &opts);
    assert!(matches!(report.lines[0].verdict, Verdict::Advisory { .. }));
    assert!(report.gate().is_ok());
}

#[test]
fn cross_machine_regressions_are_advisory() {
    let opts = CompareOptions::default();
    let base = record("ci-host-a", vec![entry("kernel/a/serial/coo", 0.01)]);
    let cur = record("laptop-b", vec![entry("kernel/a/serial/coo", 0.05)]);
    let report = compare(&base, &cur, &opts);
    assert!(!report.machine_match);
    assert!(matches!(report.lines[0].verdict, Verdict::Advisory { .. }));
    assert!(report.gate().is_ok());

    // Same 5x slowdown on the same machine is fatal.
    let cur_same = record("ci-host-a", vec![entry("kernel/a/serial/coo", 0.05)]);
    assert!(compare(&base, &cur_same, &opts).gate().is_err());
}

#[test]
fn suite_tensor_generation_is_deterministic() {
    let opts = SuiteOptions::quick();
    let a = suite_tensors(&opts);
    let b = suite_tensors(&opts);
    assert_eq!(a.len(), 3);
    for ((la, ta), (lb, tb)) in a.iter().zip(&b) {
        assert_eq!(la, lb);
        assert_eq!(ta, tb, "generator `{la}` must be seed-deterministic");
        assert!(ta.nnz() > 0);
    }
    // The three generators are pinned to distinct shapes.
    assert_ne!(a[0].1.dims(), a[1].1.dims());
}

/// `(idx, min_us, spread_us, nnz)` tuples → entries with deduplicated ids
/// (records never contain duplicate entry ids).
fn entries_from_tuples(raw: Vec<(usize, u64, u64, usize)>) -> Vec<BenchEntry> {
    let mut seen = std::collections::BTreeSet::new();
    raw.into_iter()
        .filter_map(|(idx, min_us, spread, nnz)| {
            let id = format!("kernel/gen{}/serial/k{}", idx % 3, idx);
            if !seen.insert(id.clone()) {
                return None;
            }
            let min_secs = min_us as f64 / 1e6;
            Some(BenchEntry {
                id,
                group: "kernel".to_string(),
                min_secs,
                mean_secs: min_secs + spread as f64 / 1e6,
                stddev_secs: spread as f64 / 2e6,
                reps: 1 + idx % 5,
                nnz,
                tensor_bytes: nnz * 20,
                extra: BTreeMap::new(),
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serialization is lossless for any finite record contents.
    #[test]
    fn any_record_round_trips(
        raw in proptest::collection::vec(
            (0usize..24, 0u64..2_000_000, 0u64..1_000, 0usize..1_000_000), 0..12),
    ) {
        let r = record("prop-host", entries_from_tuples(raw));
        let parsed = BenchRecord::parse(&r.to_file_string()).expect("parse");
        prop_assert_eq!(parsed, r);
    }

    /// The comparator never panics and its gate agrees with its verdicts,
    /// for any pair of records (shared, disjoint, or empty id sets).
    #[test]
    fn compare_gate_is_consistent(
        base in proptest::collection::vec(
            (0usize..24, 0u64..2_000_000, 0u64..1_000, 0usize..1_000_000), 0..10),
        cur in proptest::collection::vec(
            (0usize..24, 0u64..2_000_000, 0u64..1_000, 0usize..1_000_000), 0..10),
        machine_bit in 0u64..2,
    ) {
        let same_machine = machine_bit == 1;
        let base = record("host-a", entries_from_tuples(base));
        let cur = record(
            if same_machine { "host-a" } else { "host-b" },
            entries_from_tuples(cur),
        );
        let report = compare(&base, &cur, &CompareOptions::default());
        let fatal = !report.regressed().is_empty() || !report.removed().is_empty();
        prop_assert_eq!(report.gate().is_err(), fatal);
        if !same_machine {
            prop_assert!(
                report.regressed().is_empty(),
                "cross-machine comparisons must not hard-fail on timing"
            );
        }
        // Every baseline id is accounted for exactly once.
        for b in &base.entries {
            prop_assert_eq!(report.lines.iter().filter(|l| l.id == b.id).count(), 1);
        }
    }
}
