//! Cross-crate property tests: every MTTKRP kernel agrees with the dense
//! reference on arbitrary tensors, for every mode, rank, grid, and strip
//! width.

use proptest::prelude::*;
use tenblock::core::mttkrp::dense_mttkrp;
use tenblock::core::{build_kernel, ExecPolicy, KernelConfig, KernelKind};
use tenblock::tensor::{CooTensor, DenseMatrix, Entry};

/// Strategy: a small random sparse tensor.
fn arb_tensor() -> impl Strategy<Value = CooTensor> {
    (2usize..12, 2usize..12, 2usize..12).prop_flat_map(|(i, j, k)| {
        let entry = (0..i as u32, 0..j as u32, 0..k as u32, -5.0f64..5.0)
            .prop_map(|(a, b, c, v)| Entry::new(a, b, c, v));
        proptest::collection::vec(entry, 0..60)
            .prop_map(move |es| CooTensor::from_entries([i, j, k], es))
    })
}

/// Strategy adapter: drives the structure-aware fuzz generator from the
/// proptest shim's RNG stream, so the adversarial tensor classes (empty,
/// single-slice, all-duplicates, hyper-sparse long-tail, reg-block-edge)
/// become property-test inputs alongside `arb_tensor`'s uniform ones.
struct ArbFuzzCase;

impl Strategy for ArbFuzzCase {
    type Value = tenblock::fuzz::FuzzCase;
    fn generate(&self, rng: &mut proptest::TestRng) -> Self::Value {
        tenblock::fuzz::arb_case(&mut tenblock::fuzz::FuzzRng::new(rng.next_u64()))
    }
}

/// Deterministic pseudo-random factors derived from a seed.
fn seeded_factors(dims: [usize; 3], rank: usize, seed: u64) -> Vec<DenseMatrix> {
    (0..3)
        .map(|m| {
            DenseMatrix::from_fn(dims[m], rank, |r, c| {
                let mut h = seed ^ ((r as u64) << 17) ^ ((c as u64) << 5) ^ (m as u64);
                h ^= h >> 31;
                h = h.wrapping_mul(0x9e3779b97f4a7c15);
                h ^= h >> 27;
                (h % 4000) as f64 / 1000.0 - 2.0
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_kernels_match_dense_reference(
        x in arb_tensor(),
        rank in 1usize..20,
        mode in 0usize..3,
        ga in 1usize..4,
        gb in 1usize..4,
        gc in 1usize..4,
        strip in 1usize..24,
        raw in proptest::num::u64::ANY,
    ) {
        let dims = x.dims();
        let factors = seeded_factors(dims, rank, raw);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let expect = dense_mttkrp(&x, &fs, mode);

        let perm = tenblock::tensor::coo::perm_for_mode(mode);
        let grid = [
            ga.min(dims[perm[0]]),
            gb.min(dims[perm[1]]),
            gc.min(dims[perm[2]]),
        ];
        let cfg = KernelConfig { grid, strip_width: strip, ..Default::default() };
        for kind in KernelKind::ALL {
            let k = build_kernel(kind, &x, mode, &cfg);
            let mut out = DenseMatrix::zeros(dims[mode], rank);
            k.mttkrp(&fs, &mut out);
            prop_assert!(
                expect.approx_eq(&out, 1e-9),
                "{kind:?} mode {mode} grid {grid:?} strip {strip}: max diff {}",
                expect.max_abs_diff(&out)
            );
        }
    }

    #[test]
    fn adversarial_cases_with_off_block_ranks_match_dense(
        case in ArbFuzzCase,
        rank_pick in 0usize..3,
        mode in 0usize..3,
        ga in 1usize..4,
        gb in 1usize..4,
        gc in 1usize..4,
        strip in 1usize..24,
        seed in proptest::num::u64::ANY,
    ) {
        // Ranks deliberately off the REG_BLOCK (16) multiple: the register
        // loop's remainder path runs on every strip.
        let rank = [15usize, 17, 37][rank_pick];
        let x = case.coo;
        let dims = x.dims();
        let factors = seeded_factors(dims, rank, seed);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let expect = dense_mttkrp(&x, &fs, mode);

        let perm = tenblock::tensor::coo::perm_for_mode(mode);
        let grid = [
            ga.min(dims[perm[0]].max(1)),
            gb.min(dims[perm[1]].max(1)),
            gc.min(dims[perm[2]].max(1)),
        ];
        let cfg = KernelConfig { grid, strip_width: strip, ..Default::default() };
        for kind in KernelKind::ALL {
            let k = build_kernel(kind, &x, mode, &cfg);
            let mut out = DenseMatrix::zeros(dims[mode], rank);
            k.mttkrp(&fs, &mut out);
            prop_assert!(
                expect.approx_eq(&out, 1e-9),
                "{kind:?} ({}) mode {mode} rank {rank} grid {grid:?} strip {strip}: max diff {}",
                case.label,
                expect.max_abs_diff(&out)
            );
        }
    }

    #[test]
    fn empty_output_slices_stay_zero_in_every_kernel(
        case in ArbFuzzCase,
        mode in 0usize..3,
        seed in proptest::num::u64::ANY,
    ) {
        // Hollow out the output mode: drop every entry whose output-mode
        // coordinate is even, so those rows have no contributing nonzeros.
        let dims = case.coo.dims();
        let entries: Vec<Entry> = case
            .coo
            .entries()
            .iter()
            .copied()
            .filter(|e| e.idx[mode] % 2 == 1)
            .collect();
        let x = CooTensor::from_entries(dims, entries);
        let rank = 17; // off the register-block multiple on purpose
        let factors = seeded_factors(dims, rank, seed);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let expect = dense_mttkrp(&x, &fs, mode);

        let perm = tenblock::tensor::coo::perm_for_mode(mode);
        let grid = [
            2usize.min(dims[perm[0]].max(1)),
            2usize.min(dims[perm[1]].max(1)),
            2usize.min(dims[perm[2]].max(1)),
        ];
        let cfg = KernelConfig { grid, strip_width: 8, ..Default::default() };
        for kind in KernelKind::ALL {
            let k = build_kernel(kind, &x, mode, &cfg);
            let mut out = DenseMatrix::zeros(dims[mode], rank);
            k.mttkrp(&fs, &mut out);
            prop_assert!(
                expect.approx_eq(&out, 1e-9),
                "{kind:?} ({}) mode {mode}: max diff {}",
                case.label,
                expect.max_abs_diff(&out)
            );
            for r in (0..dims[mode]).step_by(2) {
                prop_assert!(
                    out.row(r).iter().all(|&v| v == 0.0),
                    "{kind:?} ({}) mode {mode}: wrote into empty slice {r}",
                    case.label
                );
            }
        }
    }

    #[test]
    fn parallel_kernels_match_sequential(
        x in arb_tensor(),
        rank in 1usize..16,
        mode in 0usize..3,
    ) {
        let dims = x.dims();
        let factors: Vec<DenseMatrix> = (0..3)
            .map(|m| DenseMatrix::from_fn(dims[m], rank, |r, c| ((r * 7 + c * 3 + m) % 11) as f64 * 0.2 - 1.0))
            .collect();
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        for kind in [KernelKind::Splatt, KernelKind::Mb, KernelKind::RankB, KernelKind::MbRankB, KernelKind::Bcoo] {
            let cfg_seq = KernelConfig { grid: [2, 2, 2], strip_width: 8, exec: ExecPolicy::serial() };
            let cfg_par = KernelConfig { exec: ExecPolicy::auto(), ..cfg_seq.clone() };
            let perm = tenblock::tensor::coo::perm_for_mode(mode);
            let mut cfg_seq = cfg_seq;
            let mut cfg_par = cfg_par;
            for ax in 0..3 {
                cfg_seq.grid[ax] = cfg_seq.grid[ax].min(dims[perm[ax]].max(1));
                cfg_par.grid[ax] = cfg_par.grid[ax].min(dims[perm[ax]].max(1));
            }
            let k_seq = build_kernel(kind, &x, mode, &cfg_seq);
            let k_par = build_kernel(kind, &x, mode, &cfg_par);
            let mut a = DenseMatrix::zeros(dims[mode], rank);
            let mut b = DenseMatrix::zeros(dims[mode], rank);
            k_seq.mttkrp(&fs, &mut a);
            k_par.mttkrp(&fs, &mut b);
            prop_assert!(a.approx_eq(&b, 1e-12), "{kind:?} parallel mismatch");
        }
    }

    #[test]
    fn bcoo_matches_dense_across_modes_and_reg_block_edges(
        case in ArbFuzzCase,
        rank_pick in 0usize..3,
        ga in 1usize..5,
        gb in 1usize..5,
        gc in 1usize..5,
        strip in 1usize..24,
        seed in proptest::num::u64::ANY,
    ) {
        // BCOO gets its own sweep: ranks straddling REG_BLOCK (16) so the
        // micro-kernel's full-chunk and remainder column paths both run,
        // every mode, and grids coarse enough that the gather heuristic
        // takes both its branches across the fuzz case classes.
        let rank = [15usize, 16, 17][rank_pick];
        let x = case.coo;
        let dims = x.dims();
        let factors = seeded_factors(dims, rank, seed);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        for mode in 0..3 {
            let expect = dense_mttkrp(&x, &fs, mode);
            let perm = tenblock::tensor::coo::perm_for_mode(mode);
            let grid = [
                ga.min(dims[perm[0]].max(1)),
                gb.min(dims[perm[1]].max(1)),
                gc.min(dims[perm[2]].max(1)),
            ];
            let cfg = KernelConfig { grid, strip_width: strip, ..Default::default() };
            let k = build_kernel(KernelKind::Bcoo, &x, mode, &cfg);
            let mut out = DenseMatrix::zeros(dims[mode], rank);
            k.mttkrp(&fs, &mut out);
            prop_assert!(
                expect.approx_eq(&out, 1e-9),
                "BCOO ({}) mode {mode} rank {rank} grid {grid:?} strip {strip}: max diff {}",
                case.label,
                expect.max_abs_diff(&out)
            );
        }
    }

    #[test]
    fn all_kernels_pass_checked_execution(
        x in arb_tensor(),
        rank in 1usize..16,
        mode in 0usize..3,
    ) {
        let dims = x.dims();
        let factors = seeded_factors(dims, rank, 0xc0ffee);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let expect = dense_mttkrp(&x, &fs, mode);
        let perm = tenblock::tensor::coo::perm_for_mode(mode);
        let mut cfg = KernelConfig {
            grid: [2, 2, 2],
            strip_width: 8,
            exec: ExecPolicy::checked(),
        };
        for ax in 0..3 {
            cfg.grid[ax] = cfg.grid[ax].min(dims[perm[ax]].max(1));
        }
        for kind in KernelKind::ALL {
            let k = build_kernel(kind, &x, mode, &cfg);
            let mut out = DenseMatrix::zeros(dims[mode], rank);
            let res = k.mttkrp_checked(&fs, &mut out);
            prop_assert!(res.is_ok(), "{kind:?} mode {mode} refused: {:?}", res.err());
            prop_assert!(
                expect.approx_eq(&out, 1e-9),
                "{kind:?} mode {mode}: checked run diverged from reference"
            );
        }
    }
}
