//! The recorded kernel counters agree with the Section IV traffic model:
//! the bytes a traced MTTKRP reports must match `RooflineInputs` (Eq. 1
//! at `alpha = 0`) computed independently from the tensor, for every mode.
//!
//! Also exercises the `ExecPolicy` entry points, which are the only way
//! to select threading since the `parallel: bool` shims were retired.

use std::collections::HashSet;
use std::sync::Arc;
use tenblock::analysis::RooflineInputs;
use tenblock::core::obs::{Rec, TraceRecorder};
use tenblock::core::{build_kernel, ExecPolicy, KernelConfig, KernelKind};
use tenblock::tensor::coo::perm_for_mode;
use tenblock::tensor::gen::Dataset;
use tenblock::tensor::{CooTensor, DenseMatrix};

/// SPLATT fiber count for `mode`, computed straight from the COO entries —
/// independent of the kernel's own bookkeeping. A fiber is a distinct
/// (slice, fiber-mode) pair: fixed `perm[0]` and `perm[2]`, varying
/// `perm[1]` (Figure 1b).
fn fiber_count(t: &CooTensor, mode: usize) -> u64 {
    let perm = perm_for_mode(mode);
    let pairs: HashSet<(u32, u32)> = t
        .entries()
        .iter()
        .map(|e| (e.idx[perm[0]], e.idx[perm[2]]))
        .collect();
    pairs.len() as u64
}

#[test]
fn traced_mttkrp_bytes_match_section_iv_model() {
    let t = Dataset::Poisson1.generate_with([60, 50, 40], 6_000, 7);
    let rank = 16;
    let factors: Vec<DenseMatrix> = t
        .dims()
        .iter()
        .map(|&d| DenseMatrix::from_fn(d, rank, |r, c| ((r + 3 * c) % 7) as f64 * 0.25))
        .collect();
    let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];

    for mode in 0..3 {
        let tracer = Arc::new(TraceRecorder::new());
        let cfg = KernelConfig::default()
            .with_exec(ExecPolicy::serial().with_recorder(Rec::new(Arc::clone(&tracer) as _)));
        let k = build_kernel(KernelKind::Splatt, &t, mode, &cfg);
        let mut out = DenseMatrix::zeros(t.dims()[mode], rank);
        k.mttkrp(&fs, &mut out);

        let spans = tracer.snapshot();
        let span = spans
            .iter()
            .find(|s| s.name == "mttkrp/SPLATT")
            .expect("traced kernel emits a span");
        let c = span.counters.as_ref().expect("kernel span has counters");

        let model = RooflineInputs {
            nnz: t.nnz() as u64,
            fibers: fiber_count(&t, mode),
            rank: rank as u64,
            alpha: 0.0,
        };
        let measured = (c.tensor_bytes + c.factor_bytes) as f64;
        let predicted = model.traffic_bytes();
        let rel = (measured - predicted).abs() / predicted;
        assert!(
            rel < 0.10,
            "mode {mode}: measured {measured} vs model {predicted} ({:.1}% off)",
            rel * 100.0
        );
        assert_eq!(c.flops as f64, model.flops(), "mode {mode} flop count");
        assert_eq!(c.nnz, t.nnz() as u64);
    }
}

#[test]
fn exec_policy_is_the_single_threading_entry_point() {
    use tenblock::core::mttkrp::SplattKernel;
    use tenblock::core::{tune, MttkrpKernel, TuneOptions};

    let t = Dataset::Poisson1.generate_with([30, 25, 20], 2_000, 3);
    let rank = 8;
    let factors: Vec<DenseMatrix> = t
        .dims()
        .iter()
        .map(|&d| DenseMatrix::from_fn(d, rank, |r, c| ((r * 5 + c) % 9) as f64 * 0.3))
        .collect();
    let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];

    // ExecPolicy::auto() selects the parallel path and the result matches
    // the serial kernel.
    let serial = SplattKernel::new(&t, 0);
    let auto = SplattKernel::new(&t, 0).with_exec(ExecPolicy::auto());
    let mut a = DenseMatrix::zeros(t.dims()[0], rank);
    let mut b = DenseMatrix::zeros(t.dims()[0], rank);
    serial.mttkrp(&fs, &mut a);
    auto.mttkrp(&fs, &mut b);
    assert!(a.approx_eq(&b, 1e-12));

    // The tuner threads ExecPolicy through and config_with carries the
    // caller's policy into the selected KernelConfig.
    let mut opts = TuneOptions::new(rank);
    opts.reps = 1;
    opts.max_blocks = 4;
    let r = tune(&t, 0, &opts);
    assert!(r.config_with(ExecPolicy::auto()).exec.is_parallel());
    assert!(!r.config_with(ExecPolicy::serial()).exec.is_parallel());
    assert_eq!(r.config_with(ExecPolicy::auto()).grid, r.grid);
}
