//! End-to-end CPD integration: decomposition quality is identical across
//! kernels, the tuner's output plugs straight into ALS, and the whole
//! pipeline survives realistic (clustered, count-valued) data.

use tenblock::core::{tune, ExecPolicy, KernelConfig, KernelKind, TuneOptions};
use tenblock::cpd::{CpAls, CpAlsOptions, KruskalTensor};
use tenblock::tensor::gen::{clustered_tensor, ClusteredConfig};
use tenblock::tensor::DenseMatrix;

/// Low-rank planted tensor via the Kruskal materializer.
fn planted(rank: usize, dims: [usize; 3], seed: u64) -> tenblock::tensor::CooTensor {
    let factors: Vec<DenseMatrix> = dims
        .iter()
        .enumerate()
        .map(|(m, &d)| {
            DenseMatrix::from_fn(d, rank, |r, c| {
                let h = (r * 2654435761 + c * 40503 + m * 97 + seed as usize) % 1000;
                h as f64 / 1000.0 + 0.05
            })
        })
        .collect();
    KruskalTensor::new(vec![1.0; rank], factors).to_coo()
}

#[test]
fn blocked_cpd_recovers_planted_rank() {
    let x = planted(4, [15, 12, 10], 3);
    let mut opts = CpAlsOptions::new(4);
    opts.max_iters = 150;
    opts.tol = 1e-10;
    opts.kernel = KernelKind::MbRankB;
    opts.kernel_cfg = KernelConfig {
        grid: [2, 2, 2],
        strip_width: 16,
        ..Default::default()
    };
    let result = CpAls::new(&x, opts).run(&x);
    let fit = *result.fit_history.last().unwrap();
    assert!(fit > 0.99, "fit = {fit}");
}

#[test]
fn tuner_output_feeds_als() {
    let cfg = ClusteredConfig::new([200, 300, 150], 15_000);
    let x = clustered_tensor(&cfg, 21);
    let mut topts = TuneOptions::new(16);
    topts.reps = 1;
    topts.max_blocks = 8;
    let tuned = tune(&x, 0, &topts);

    let mut opts = CpAlsOptions::new(16);
    opts.max_iters = 10;
    opts.tol = 0.0;
    opts.kernel = KernelKind::MbRankB;
    opts.kernel_cfg = KernelConfig {
        grid: tuned.grid,
        strip_width: tuned.strip_width,
        exec: ExecPolicy::auto(),
    };
    let result = CpAls::new(&x, opts).run(&x);
    assert_eq!(result.fit_history.len(), 10);
    // count data with structure: ALS should make real progress
    let fit = *result.fit_history.last().unwrap();
    assert!(fit > 0.0, "fit = {fit}");
}

#[test]
fn kernel_choice_does_not_change_the_math() {
    let x = planted(3, [12, 14, 9], 8);
    let mut fits = Vec::new();
    for kind in KernelKind::ALL {
        let mut opts = CpAlsOptions::new(3);
        opts.max_iters = 20;
        opts.tol = 0.0;
        opts.kernel = kind;
        opts.kernel_cfg = KernelConfig {
            grid: [3, 2, 2],
            strip_width: 8,
            ..Default::default()
        };
        let result = CpAls::new(&x, opts).run(&x);
        fits.push(*result.fit_history.last().unwrap());
    }
    for f in &fits[1..] {
        assert!(
            (f - fits[0]).abs() < 1e-6,
            "fits diverge across kernels: {fits:?}"
        );
    }
}
