//! Property tests for the out-of-core path: a [`StreamingMttkrp`] fed
//! from an on-disk (spilled) tile store must match the in-memory MB and
//! BCOO kernels **bit for bit** — same values, same bits — on clustered
//! and hyper-sparse tensors, including tile budgets small enough to force
//! multi-tile streaming. Streamed CP-ALS must track the in-memory solver
//! to roundoff.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use tenblock::core::block::MbKernel;
use tenblock::core::mttkrp::BcooKernel;
use tenblock::core::tune::grid_for_tile_budget;
use tenblock::core::{KernelKind, MttkrpKernel, StreamingMttkrp};
use tenblock::cpd::{CpAls, CpAlsOptions, CpAlsStream};
use tenblock::tensor::coo::perm_for_mode;
use tenblock::tensor::gen::{clustered_tensor, ClusteredConfig};
use tenblock::tensor::{CooTensor, DenseMatrix, Entry, Idx, TileStore, NMODES};

/// A fresh path under the system temp dir; unique per call so proptest
/// cases never collide.
fn fresh_store_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "tenblock_stream_eq_{}_{tag}_{}.tnsb",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Deterministic factor matrices (shared by streamed and in-memory runs).
fn factors_for(x: &CooTensor, rank: usize, seed: u64) -> Vec<DenseMatrix> {
    x.dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| {
            DenseMatrix::from_fn(d, rank, |r, c| {
                let mut h = seed ^ ((r as u64) << 17) ^ ((c as u64) << 5) ^ (m as u64);
                h ^= h >> 31;
                h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                h ^= h >> 29;
                (h % 1000) as f64 / 500.0 - 1.0
            })
        })
        .collect()
}

/// Strategy: a clustered tensor (dense boxes on a sparse background — the
/// profile the BCOO micro-kernel targets).
fn arb_clustered() -> impl Strategy<Value = CooTensor> {
    (
        12usize..40,
        12usize..36,
        12usize..30,
        200usize..1200,
        0u64..1000,
    )
        .prop_map(|(d0, d1, d2, nnz, seed)| {
            clustered_tensor(&ClusteredConfig::new([d0, d1, d2], nnz), seed)
        })
}

/// Strategy: a hyper-sparse tensor — one mode far longer than its nonzero
/// count, entries clustered at the far end (worst case for any blocking
/// that assumes occupancy).
fn arb_hyper_sparse() -> impl Strategy<Value = CooTensor> {
    (64usize..1024, 2usize..6, 2usize..6).prop_flat_map(|(long, d1, d2)| {
        let entry = (0..long as u32, 0..d1 as u32, 0..d2 as u32, -2.0f64..2.0);
        (proptest::collection::vec(entry, 1..40), 0u8..2).prop_map(move |(raw, tail)| {
            let tail = tail == 1;
            let entries: Vec<Entry> = raw
                .iter()
                .enumerate()
                .map(|(n, &(i, j, k, v))| Entry {
                    // Half the entries pinned to the far end of the
                    // long mode when `tail` is set.
                    idx: [
                        if tail && n % 2 == 0 {
                            (long - 1 - (n % 8).min(long - 1)) as Idx
                        } else {
                            i
                        },
                        j,
                        k,
                    ],
                    val: v,
                })
                .collect();
            CooTensor::from_entries([long, d1, d2], entries)
        })
    })
}

/// Spills `x` to an on-disk tile store whose grid comes from `budget`,
/// then checks the streamed MTTKRP against BCOO (strips 0 and 16) and MB
/// (whole-rank strips) for every mode, bit for bit. Returns the tile
/// count so callers can assert the budget actually forced multiple tiles.
fn assert_streamed_matches_in_memory(x: &CooTensor, budget: u64) -> usize {
    let grid = grid_for_tile_budget(x.dims(), x.nnz(), budget);
    let path = fresh_store_path("mttkrp");
    let store = TileStore::create_from_coo(x, grid, &path).unwrap();
    let rank = 17; // deliberately not a multiple of the register block
    let factors = factors_for(x, rank, 0xace5);
    let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];

    for mode in 0..NMODES {
        let perm = perm_for_mode(mode);
        let grid_kernel = [grid[perm[0]], grid[perm[1]], grid[perm[2]]];
        for strip in [0usize, 16] {
            let k = BcooKernel::new(x, mode, grid_kernel, strip);
            let mut expect = DenseMatrix::zeros(x.dims()[mode], rank);
            k.mttkrp(&fs, &mut expect);
            let mut got = DenseMatrix::zeros(x.dims()[mode], rank);
            StreamingMttkrp::new(&store, mode, strip)
                .run(&fs, &mut got)
                .unwrap();
            for (n, (a, b)) in expect.as_slice().iter().zip(got.as_slice()).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "BCOO mode {mode} strip {strip} element {n}: {a:?} vs {b:?}"
                );
            }
        }
        let k = MbKernel::new(x, mode, grid_kernel);
        let mut expect = DenseMatrix::zeros(x.dims()[mode], rank);
        k.mttkrp(&fs, &mut expect);
        let mut got = DenseMatrix::zeros(x.dims()[mode], rank);
        StreamingMttkrp::new(&store, mode, 0)
            .run(&fs, &mut got)
            .unwrap();
        for (n, (a, b)) in expect.as_slice().iter().zip(got.as_slice()).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "MB mode {mode} element {n}: {a:?} vs {b:?}"
            );
        }
    }
    let tiles = store.n_tiles();
    let _ = std::fs::remove_file(&path);
    tiles
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn clustered_streams_bit_for_bit_through_a_spilled_store(x in arb_clustered()) {
        // A budget far below the tensor's in-memory size: every MTTKRP
        // must take multiple tile passes.
        let tiles = assert_streamed_matches_in_memory(&x, 2048);
        prop_assert!(tiles > 1, "budget failed to force multiple tiles");
    }

    #[test]
    fn hyper_sparse_streams_bit_for_bit_through_a_spilled_store(x in arb_hyper_sparse()) {
        // Hyper-sparse tensors may legitimately fit one tile; correctness
        // is the property, multi-tile is exercised by the clustered case.
        assert_streamed_matches_in_memory(&x, 512);
    }

    #[test]
    fn streamed_als_over_a_spilled_store_matches_in_memory(
        x in arb_clustered(),
        rank in 2usize..5,
    ) {
        let mut opts = CpAlsOptions::new(rank);
        opts.max_iters = 4;
        opts.tol = 0.0;
        opts.kernel = KernelKind::Bcoo;
        opts.kernel_cfg.grid = [2, 2, 2];
        opts.kernel_cfg.strip_width = 16;
        let mem = CpAls::new(&x, opts.clone()).run(&x);

        let path = fresh_store_path("als");
        let store = TileStore::create_from_coo(&x, [2, 2, 2], &path).unwrap();
        let solver = CpAlsStream::new(&store, opts);
        let streamed = solver.run().unwrap();
        let _ = std::fs::remove_file(&path);

        prop_assert_eq!(streamed.iterations, mem.iterations);
        for (s, m) in streamed.fit_history.iter().zip(&mem.fit_history) {
            prop_assert!(
                (s - m).abs() < 1e-9,
                "fit diverged: streamed {} vs in-memory {}", s, m
            );
        }
        // The driver really streamed: one norm pass plus three MTTKRP
        // passes per iteration over all eight tiles.
        let snap = solver.stats().snapshot();
        let passes = 1 + NMODES as u64 * streamed.iterations as u64;
        prop_assert_eq!(snap.tiles_loaded, passes * store.n_tiles() as u64);
    }
}
