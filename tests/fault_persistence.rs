//! Fault-persistence properties: a single injected I/O fault during
//! `TileStore::create_from_coo_with` or a registry spill never produces a
//! half-written store. Whatever is visible at the final path either opens
//! fully valid or fails with a typed error — never a panic.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use tenblock::faults::{FaultAction, FaultOp, FaultPolicy, Trigger};
use tenblock::serve::Registry;
use tenblock::tensor::gen::uniform_tensor;
use tenblock::tensor::{CooTensor, TileStore};

/// Unique scratch dir per proptest case (cases run in one process).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tenblock_fault_persist_{}_{tag}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn content_of(coo: &CooTensor) -> Vec<([u32; 3], u64)> {
    let mut v: Vec<_> = coo
        .entries()
        .iter()
        .map(|e| (e.idx, e.val.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

/// `(op, action, flip?)` drawn from the full fault vocabulary by index.
/// EINTR is excluded for writes (`Write::write_all` retries `Interrupted`
/// itself, so it can never surface); EAGAIN and EIO both propagate.
fn arb_fault() -> impl Strategy<Value = (FaultOp, FaultAction, bool)> {
    (0usize..3, 0usize..6).prop_map(|(o, a)| {
        let op = [FaultOp::Write, FaultOp::Sync, FaultOp::Rename][o];
        let (action, flip) = [
            (FaultAction::Errno(5), false),
            (FaultAction::Errno(11), false),
            (FaultAction::Errno(28), false),
            (FaultAction::ShortRead, false),
            (FaultAction::FlipByte, true),
            (FaultAction::Crash, false),
        ][a];
        (op, action, flip)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One fault at op #n during store creation: `create_from_coo_with`
    /// either succeeds with a bit-exact store on disk or fails typed, and
    /// in both cases `open` never sees a half-written file.
    #[test]
    fn single_fault_during_create_never_leaves_partial_store(
        (op, action, flip) in arb_fault(),
        nth in 0u64..24,
        seed in 0u64..1_000_000,
    ) {
        let dir = scratch("create");
        let coo = uniform_tensor([16, 12, 8], 400, seed);
        let expect = content_of(&coo);
        let path = dir.join("store.tnsb");
        let policy = FaultPolicy::new(op, action, Trigger::Nth(nth), seed);
        // A create error is typed — the acceptable failure shape. On
        // success the published store must decode; with a byte flip the
        // payload may differ or be detectably invalid.
        if let Ok(store) = TileStore::create_from_coo_with(&coo, [2, 2, 2], &path, policy) {
            match store.to_coo() {
                Ok(back) => prop_assert!(flip || content_of(&back) == expect),
                Err(_) => prop_assert!(flip),
            }
        }
        if path.exists() {
            // Whatever is visible must be openable + decodable (a flip may
            // fail either step with a typed error, never a panic).
            match TileStore::open(&path).and_then(|s| s.to_coo()) {
                Ok(back) => prop_assert!(flip || content_of(&back) == expect),
                Err(_) => prop_assert!(flip),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// One fault during a registry spill: both tensors stay registered
    /// (the victim stays resident if its spill fails), and every `.tnsb`
    /// published to the spill dir opens fully valid.
    #[test]
    fn single_fault_during_spill_degrades_gracefully(
        (op, action, flip) in arb_fault(),
        nth in 0u64..24,
        seed in 0u64..1_000_000,
    ) {
        let dir = scratch("spill");
        let policy = FaultPolicy::new(op, action, Trigger::Nth(nth), seed);
        let reg = Registry::with_spill(&dir, 1).with_faults(policy);
        reg.register("a", uniform_tensor([12, 10, 8], 250, seed)).unwrap();
        reg.register("b", uniform_tensor([10, 10, 10], 200, seed ^ 1)).unwrap();
        prop_assert_eq!(reg.len(), 2);
        for entry in std::fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()) {
            let p = entry.path();
            if p.is_file() && p.extension().is_some_and(|e| e == "tnsb") {
                match TileStore::open(&p).and_then(|s| s.to_coo()) {
                    Ok(_) => {}
                    Err(_) => prop_assert!(flip, "half-written spill at {}", p.display()),
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
