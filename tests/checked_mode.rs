//! Checked-execution integration tests.
//!
//! * Every kernel passes race detection and invariant oracles on healthy
//!   inputs (and still computes the right answer).
//! * A deliberately corrupted MB grid — one block boundary shifted by a
//!   single row — is refused before launch with a structured [`RaceReport`]
//!   naming the overlapping output rows.
//! * The checked-mode overhead on SPLATT stays bounded (< 2x), so checked
//!   execution is cheap enough to leave on in CI.

use tenblock::core::block::{BlockGrid, MbKernel};
use tenblock::core::check::Violation;
use tenblock::core::mttkrp::{dense_mttkrp, BcooKernel};
use tenblock::core::{build_kernel, ExecPolicy, KernelConfig, KernelKind, MttkrpKernel};
use tenblock::tensor::gen::uniform_tensor;
use tenblock::tensor::{BcooTensor, DenseMatrix};

/// Deterministic factors for a tensor's dims.
fn factors(dims: [usize; 3], rank: usize) -> Vec<DenseMatrix> {
    (0..3)
        .map(|m| {
            DenseMatrix::from_fn(dims[m], rank, |r, c| {
                ((r * 13 + c * 5 + m * 7) % 17) as f64 * 0.125 - 1.0
            })
        })
        .collect()
}

#[test]
fn all_kernels_pass_checked_mode_and_match_reference() {
    let x = uniform_tensor([14, 11, 9], 600, 42);
    let rank = 12;
    let fs_owned = factors(x.dims(), rank);
    let fs: [&DenseMatrix; 3] = [&fs_owned[0], &fs_owned[1], &fs_owned[2]];
    for mode in 0..3 {
        let expect = dense_mttkrp(&x, &fs, mode);
        let cfg = KernelConfig {
            grid: [3, 2, 2],
            strip_width: 8,
            exec: ExecPolicy::checked(),
        };
        for kind in KernelKind::ALL {
            let k = build_kernel(kind, &x, mode, &cfg);
            let mut out = DenseMatrix::zeros(x.dims()[mode], rank);
            k.mttkrp_checked(&fs, &mut out)
                .unwrap_or_else(|report| panic!("{kind:?} mode {mode} refused: {report}"));
            assert!(
                expect.approx_eq(&out, 1e-9),
                "{kind:?} mode {mode}: checked run diverged from reference"
            );
        }
    }
}

#[test]
fn shifted_block_boundary_is_caught_with_the_overlapping_row() {
    let x = uniform_tensor([12, 8, 8], 500, 7);
    let mut grid = BlockGrid::new(&x, 0, [3, 2, 2]);
    let boundary = grid.bounds(0)[1];

    // The healthy grid passes.
    let healthy = BlockGrid::new(&x, 0, [3, 2, 2]);
    let k = MbKernel::from_grid(healthy).with_exec(ExecPolicy::checked());
    let fs_owned = factors(x.dims(), 8);
    let fs: [&DenseMatrix; 3] = [&fs_owned[0], &fs_owned[1], &fs_owned[2]];
    let mut out = DenseMatrix::zeros(12, 8);
    k.mttkrp_checked(&fs, &mut out)
        .expect("healthy grid passes");

    // Shift one slice-axis boundary by a single row without re-bucketing
    // the nonzeros: block row 1 still contains slices starting at
    // `boundary`, which now belong to task 0's claim.
    grid.shift_bound_for_test(0, 1, 1);
    let bad = MbKernel::from_grid(grid).with_exec(ExecPolicy::checked());
    let mut out = DenseMatrix::zeros(12, 8);
    let report = bad
        .mttkrp_checked(&fs, &mut out)
        .expect_err("shifted boundary must be refused");

    assert_eq!(report.kernel, "MB");
    assert!(
        report.overlapping_rows().contains(&boundary),
        "report must name the boundary row {boundary}: {report}"
    );
    // The grid oracle independently notices entries escaping their box.
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Invariant { .. })),
        "grid oracle should also fire: {report}"
    );
}

#[test]
fn shifted_bcoo_boundary_is_caught_with_the_overlapping_row() {
    let x = uniform_tensor([12, 8, 8], 500, 7);
    let fs_owned = factors(x.dims(), 8);
    let fs: [&DenseMatrix; 3] = [&fs_owned[0], &fs_owned[1], &fs_owned[2]];

    // The healthy layout passes checked mode.
    let healthy = BcooTensor::from_coo(&x, 0, [3, 2, 2]);
    let boundary = healthy.bounds(0)[1];
    let k = BcooKernel::from_tensor(healthy, 8).with_exec(ExecPolicy::checked());
    let mut out = DenseMatrix::zeros(12, 8);
    k.mttkrp_checked(&fs, &mut out)
        .expect("healthy BCOO layout passes");

    // Shift one slice-axis boundary without touching the blocks' origins:
    // block row 1 still decodes entries at slice `boundary`, which now
    // belongs to block row 0's claim.
    let mut t = BcooTensor::from_coo(&x, 0, [3, 2, 2]);
    t.shift_bound_for_test(0, 1, 1);
    let bad = BcooKernel::from_tensor(t, 8).with_exec(ExecPolicy::checked());
    let mut out = DenseMatrix::zeros(12, 8);
    let report = bad
        .mttkrp_checked(&fs, &mut out)
        .expect_err("shifted boundary must be refused");

    assert_eq!(report.kernel, "BCOO");
    assert!(
        report.overlapping_rows().contains(&boundary),
        "report must name the boundary row {boundary}: {report}"
    );
    // The grid oracle independently notices decoded entries escaping
    // their (shifted) box.
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Invariant { .. })),
        "grid oracle should also fire: {report}"
    );
}

#[test]
fn plain_mttkrp_panics_on_a_corrupt_grid_in_checked_mode() {
    let x = uniform_tensor([12, 8, 8], 500, 7);
    let mut grid = BlockGrid::new(&x, 0, [3, 2, 2]);
    grid.shift_bound_for_test(0, 1, 1);
    let bad = MbKernel::from_grid(grid).with_exec(ExecPolicy::checked());
    let fs_owned = factors(x.dims(), 8);
    let fs: [&DenseMatrix; 3] = [&fs_owned[0], &fs_owned[1], &fs_owned[2]];
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut out = DenseMatrix::zeros(12, 8);
        bad.mttkrp(&fs, &mut out);
    }));
    let err = caught.expect_err("checked mode must refuse the launch");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("checked execution refused launch"),
        "unexpected panic message: {msg}"
    );
}

#[test]
fn checked_mode_overhead_on_splatt_is_bounded() {
    let x = uniform_tensor([60, 50, 40], 20_000, 3);
    let rank = 32;
    let fs_owned = factors(x.dims(), rank);
    let fs: [&DenseMatrix; 3] = [&fs_owned[0], &fs_owned[1], &fs_owned[2]];
    let cfg_auto = KernelConfig {
        grid: [1, 1, 1],
        strip_width: rank,
        exec: ExecPolicy::auto(),
    };
    let cfg_checked = KernelConfig {
        exec: ExecPolicy::checked(),
        ..cfg_auto.clone()
    };

    let time = |cfg: &KernelConfig| {
        let k = build_kernel(KernelKind::Splatt, &x, 0, cfg);
        let mut out = DenseMatrix::zeros(x.dims()[0], rank);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            k.mttkrp(&fs, &mut out);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };

    let auto = time(&cfg_auto);
    let checked = time(&cfg_checked);
    let ratio = checked / auto;
    println!("SPLATT checked-mode overhead: {ratio:.3}x ({auto:.6}s auto, {checked:.6}s checked)");
    assert!(
        ratio < 2.0,
        "checked mode must stay under 2x (measured {ratio:.3}x)"
    );
}
