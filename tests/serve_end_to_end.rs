//! End-to-end test of `tenblock-serve` over real TCP: two concurrent
//! clients drive gen → tune → decompose → metrics, proving (a) the second
//! tune of the same tensor/rank is answered from the plan cache, and (b) a
//! capacity-1 queue rejects overflow with a typed `queue-full` error.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use tenblock_serve::{Json, Server, ServerConfig};

/// A line-delimited JSON client.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn request(&mut self, req: &str) -> Json {
        self.stream.write_all(req.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        Json::parse(&line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }

    fn expect_ok(&mut self, req: &str) -> Json {
        let r = self.request(req);
        assert_eq!(r.get_bool("ok"), Some(true), "request {req} failed: {r:?}");
        r
    }
}

#[test]
fn two_clients_share_tensors_and_tuned_plans() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    let mut a = Client::connect(addr);
    a.expect_ok(r#"{"cmd":"gen","name":"t","dataset":"poisson1","nnz":2000,"seed":11}"#);

    let tune_req = r#"{"cmd":"tune","tensor":"t","rank":8,"reps":1,"max_blocks":2,"wait":true}"#;
    let first = a.expect_ok(tune_req);
    assert_eq!(first.get_str("state"), Some("done"), "{first:?}");
    assert_eq!(
        first.get("result").unwrap().get_bool("cached"),
        Some(false),
        "first tune must actually run the heuristic"
    );

    // A *different* connection tunes the same tensor/rank and decomposes;
    // the tensor and the tuned plan are shared service state, not
    // per-connection state.
    let handle = std::thread::spawn(move || {
        let mut b = Client::connect(addr);
        let second = b.expect_ok(tune_req);
        assert_eq!(second.get_str("state"), Some("done"), "{second:?}");
        assert_eq!(
            second.get("result").unwrap().get_bool("cached"),
            Some(true),
            "second tune of the same shape+rank must be a plan-cache hit"
        );
        let d = b.expect_ok(
            r#"{"cmd":"decompose","tensor":"t","method":"als","rank":8,"iters":3,"wait":true}"#,
        );
        assert_eq!(d.get_str("state"), Some("done"), "{d:?}");
        assert!(d.get("result").unwrap().get_usize("iterations").unwrap() >= 1);
    });
    // Client A keeps working while B runs: stats answer immediately from
    // the registry even with jobs in flight.
    let stats = a.expect_ok(r#"{"cmd":"stats","tensor":"t"}"#);
    assert!(stats.get_usize("nnz").unwrap() > 0);
    handle.join().expect("client B");

    let m = a.expect_ok(r#"{"cmd":"metrics"}"#);
    let metrics = m.get("metrics").unwrap();
    let jobs = metrics.get("jobs").unwrap();
    assert!(jobs.get_usize("done").unwrap() >= 3, "{metrics:?}");
    assert_eq!(jobs.get_usize("failed"), Some(0), "{metrics:?}");
    let plan_cache = metrics.get("plan_cache").unwrap();
    assert!(plan_cache.get_usize("hits").unwrap() >= 1, "{metrics:?}");
    assert_eq!(plan_cache.get_usize("misses"), Some(1), "{metrics:?}");
    assert_eq!(metrics.get_usize("tensors"), Some(1));
}

#[test]
fn capacity_one_queue_rejects_with_typed_error() {
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let mut c = Client::connect(server.addr());
    c.expect_ok(r#"{"cmd":"gen","name":"t","dataset":"poisson1","nnz":2000,"seed":3}"#);

    // Fire slow jobs without waiting until one bounces off the full
    // queue. One worker plus one slot means the third-or-so rapid submit
    // must be rejected. MTTKRP with a large fixed rep count is the slow
    // job of choice: unlike ALS it cannot converge early, so the worker
    // stays busy long enough for the cancellation below to be meaningful.
    let slow = r#"{"cmd":"mttkrp","tensor":"t","mode":0,"kernel":"splatt","rank":8,"reps":4000}"#;
    let mut queued = Vec::new();
    let mut rejection = None;
    for _ in 0..8 {
        let r = c.request(slow);
        if r.get_bool("ok") == Some(true) {
            queued.push(r.get_str("job").unwrap().to_string());
        } else {
            rejection = Some(r);
            break;
        }
    }
    let rejection = rejection.expect("queue never filled");
    assert_eq!(
        rejection.get_str("code"),
        Some("queue-full"),
        "{rejection:?}"
    );
    assert_eq!(rejection.get_str("error"), Some("job queue is full"));

    let m = c.expect_ok(r#"{"cmd":"metrics"}"#);
    let metrics = m.get("metrics").unwrap();
    assert!(metrics.get("jobs").unwrap().get_usize("rejected").unwrap() >= 1);
    assert_eq!(metrics.get("queue").unwrap().get_usize("capacity"), Some(1));

    // Cancel the queued backlog (the running job is uncancellable — that
    // path must answer with a typed bad-request, not silently succeed).
    let mut cancelled = 0;
    for job in &queued {
        let r = c.request(&format!(r#"{{"cmd":"cancel","job":"{job}"}}"#));
        match r.get_bool("ok") {
            Some(true) => cancelled += 1,
            _ => assert_eq!(r.get_str("code"), Some("bad-request"), "{r:?}"),
        }
    }
    assert!(cancelled >= 1, "at least the queued job should cancel");

    // The running job eventually finishes; its terminal status is
    // observable via job-status.
    let first = &queued[0];
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let st = c.expect_ok(&format!(r#"{{"cmd":"job-status","job":"{first}"}}"#));
        match st.get_str("state") {
            Some("done") | Some("cancelled") => break,
            Some("failed") => panic!("job failed: {st:?}"),
            _ if Instant::now() > deadline => panic!("job never finished: {st:?}"),
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}
