//! Property tests for both tuners: whatever configuration they select must
//! be buildable and numerically equivalent to the baseline.

use proptest::prelude::*;
use tenblock::analysis::{tune_by_model, ModelTuneOptions};
use tenblock::core::block::MbRankBKernel;
use tenblock::core::mttkrp::SplattKernel;
use tenblock::core::{tune, MttkrpKernel, TuneOptions};
use tenblock::tensor::coo::perm_for_mode;
use tenblock::tensor::gen::{clustered_tensor, ClusteredConfig};
use tenblock::tensor::DenseMatrix;

fn check_config_valid_and_correct(
    x: &tenblock::tensor::CooTensor,
    mode: usize,
    grid: [usize; 3],
    strip: usize,
    rank: usize,
) -> Result<(), TestCaseError> {
    let dims = x.dims();
    let perm = perm_for_mode(mode);
    for ax in 0..3 {
        prop_assert!(grid[ax] >= 1);
        prop_assert!(grid[ax] <= dims[perm[ax]].max(1), "grid exceeds axis");
    }
    prop_assert!(strip >= 1);

    let factors: Vec<DenseMatrix> = dims
        .iter()
        .map(|&d| DenseMatrix::from_fn(d, rank, |r, c| ((r * 3 + c) % 7) as f64 * 0.2))
        .collect();
    let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
    let base = SplattKernel::new(x, mode);
    let tuned = MbRankBKernel::new(x, mode, grid, strip);
    let mut a = DenseMatrix::zeros(dims[mode], rank);
    let mut b = DenseMatrix::zeros(dims[mode], rank);
    base.mttkrp(&fs, &mut a);
    tuned.mttkrp(&fs, &mut b);
    prop_assert!(a.approx_eq(&b, 1e-9), "tuned kernel wrong");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn timing_tuner_selects_valid_configs(
        seed in 0u64..1000,
        mode in 0usize..3,
        rank_pow in 2u32..6,
    ) {
        let rank = 1usize << rank_pow; // 4..32
        let cfg = ClusteredConfig::new([120, 150, 90], 6_000);
        let x = clustered_tensor(&cfg, seed);
        let mut opts = TuneOptions::new(rank);
        opts.reps = 1;
        opts.max_blocks = 8;
        opts.seed = seed;
        let r = tune(&x, mode, &opts);
        prop_assert!(!r.history.is_empty());
        prop_assert!(r.strip_width <= rank.max(1));
        check_config_valid_and_correct(&x, mode, r.grid, r.strip_width, rank)?;
    }

    #[test]
    fn model_tuner_selects_valid_configs(
        seed in 0u64..1000,
        mode in 0usize..3,
    ) {
        let rank = 16;
        let cfg = ClusteredConfig::new([200, 180, 160], 4_000);
        let x = clustered_tensor(&cfg, seed);
        let opts = ModelTuneOptions { rank, max_blocks: 8, sample_nnz: 2_000 };
        let r = tune_by_model(&x, mode, &opts);
        prop_assert!(!r.history.is_empty());
        // predicted traffic is positive and the selection is the argmin of
        // everything it tried along the greedy path
        prop_assert!(r.memory_bytes > 0);
        for s in &r.history {
            if s.grid == r.grid && s.strip_width == r.strip_width {
                prop_assert_eq!(s.memory_bytes, r.memory_bytes);
            }
        }
        check_config_valid_and_correct(&x, mode, r.grid, r.strip_width, rank)?;
    }
}
