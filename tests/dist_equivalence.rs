//! Distributed-vs-sequential equivalence: for arbitrary grids (3D and 4D),
//! the reassembled distributed MTTKRP equals the sequential result.

use proptest::prelude::*;
use tenblock::core::mttkrp::dense_mttkrp;
use tenblock::core::mttkrp::SplattKernel;
use tenblock::core::MttkrpKernel;
use tenblock::dist::{Partition3D, Partition4D};
use tenblock::tensor::gen::uniform_tensor;
use tenblock::tensor::DenseMatrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_3d_equals_sequential(
        q in 1usize..4,
        r in 1usize..4,
        s in 1usize..4,
        seed in 0u64..1000,
        rank in 1usize..10,
    ) {
        let x = uniform_tensor([14, 13, 12], 250, seed);
        let part = Partition3D::new(&x, [q, r, s], seed);
        let rel = part.relabeled();
        let factors: Vec<DenseMatrix> = rel
            .dims()
            .iter()
            .map(|&d| DenseMatrix::from_fn(d, rank, |i, c| ((i * 3 + c + seed as usize) % 7) as f64 * 0.3))
            .collect();
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let expect = dense_mttkrp(&rel, &fs, 0);

        let mut sum = DenseMatrix::zeros(14, rank);
        for rk in 0..part.n_ranks() {
            let local = part.local(rk);
            if local.nnz() == 0 { continue; }
            let k = SplattKernel::new(local, 0);
            let mut out = DenseMatrix::zeros(14, rank);
            k.mttkrp(&fs, &mut out);
            for (a, b) in sum.as_mut_slice().iter_mut().zip(out.as_slice()) {
                *a += b;
            }
        }
        prop_assert!(expect.approx_eq(&sum, 1e-9));
    }

    #[test]
    fn distributed_4d_strips_cover_rank(
        t in 1usize..5,
        rank in 5usize..24,
        seed in 0u64..100,
    ) {
        let x = uniform_tensor([10, 10, 10], 150, seed);
        let p = Partition4D::new(&x, [2, 1, 1], t, rank, seed);
        let mut covered = vec![false; rank];
        for g in 0..p.t() {
            for c in p.strip_cols(g) {
                prop_assert!(!covered[c], "column {c} covered twice");
                covered[c] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn partition_preserves_every_nonzero(
        q in 1usize..5,
        r in 1usize..5,
        s in 1usize..5,
        seed in 0u64..1000,
    ) {
        let x = uniform_tensor([20, 18, 16], 300, seed);
        let part = Partition3D::new(&x, [q, r, s], seed ^ 0xabc);
        prop_assert_eq!(part.rank_nnz().iter().sum::<usize>(), 300);
        let mut vals: Vec<u64> = x.entries().iter().map(|e| e.val.to_bits()).collect();
        let mut got: Vec<u64> = (0..part.n_ranks())
            .flat_map(|rk| part.local(rk).entries().iter().map(|e| e.val.to_bits()))
            .collect();
        vals.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(vals, got);
    }
}
