//! Offline shim for the `proptest` crate, covering the surface this
//! workspace's property tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `boxed`, range and tuple strategies,
//! [`collection::vec`], [`num::u64::ANY`], the [`proptest!`] test macro,
//! and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed per test (derived from the test name), and there is
//! **no shrinking** — a failing case reports its case number and message
//! only. That trade keeps the shim ~300 lines while preserving the tests'
//! power to find counterexamples.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator; each test gets a seed hashed from its name.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5bf0_3635_d1a6_4c89,
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..span` (widening multiply, no modulo bias).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derives the per-test seed. Deterministic across runs so CI failures
/// reproduce locally; vary `PROPTEST_SEED` to explore a different stream.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(extra) = s.parse::<u64>() {
            h ^= extra.wrapping_mul(0x9e3779b97f4a7c15);
        }
    }
    TestRng::new(h)
}

/// A failed property within a test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds an error carrying `msg`.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Strategy producing `f(value)`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Strategy where the generated value selects a second strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erased strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// A `Vec` of strategies generates a `Vec` of one value from each.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $S:ident),+);)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
    (0 A, 1 B, 2 C, 3 D, 4 E);
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F);
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G);
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H);
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Admissible lengths for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_excl: *r.end() + 1,
            }
        }
    }

    /// Strategy for a `Vec` whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_excl - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    macro_rules! any_mod {
        ($($m:ident $t:ty, $shift:expr;)*) => {$(
            pub mod $m {
                use crate::{Strategy, TestRng};

                /// Strategy over the full domain of the type.
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// The full-domain strategy value.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        (rng.next_u64() >> $shift) as $t
                    }
                }
            }
        )*};
    }

    any_mod! {
        u64 u64, 0;
        u32 u32, 32;
        u16 u16, 48;
        u8 u8, 56;
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fails the enclosing test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the enclosing test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Fails the enclosing test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(stringify!($name));
                for case in 0..cfg.cases {
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            cfg.cases,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_rng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = test_rng("ranges_stay_in_bounds");
        for _ in 0..500 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (2usize..=5).generate(&mut rng);
            assert!((2..=5).contains(&y));
            let f = (-4.0f64..4.0).generate(&mut rng);
            assert!((-4.0..4.0).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = test_rng("combinators_compose");
        let strat = (1usize..5).prop_flat_map(|n| {
            let cols: Vec<BoxedStrategy<u32>> = (0..n).map(|_| (0..10u32).boxed()).collect();
            crate::collection::vec((cols, 0.0f64..1.0), 0..8).prop_map(move |rows| (n, rows))
        });
        for _ in 0..100 {
            let (n, rows) = strat.generate(&mut rng);
            assert!(rows.len() < 8);
            for (coords, v) in rows {
                assert_eq!(coords.len(), n);
                assert!(coords.iter().all(|&c| c < 10));
                assert!((0.0..1.0).contains(&v));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns(a in 0u64..100, (b, c) in (0u32..4, 1usize..=3)) {
            prop_assert!(a < 100);
            prop_assert!(b < 4, "b out of range: {b}");
            prop_assert_eq!(c.clamp(1, 3), c);
            prop_assert_ne!(c, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
