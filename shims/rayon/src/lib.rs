//! Offline shim for the `rayon` crate, covering the API subset this
//! workspace uses: `into_par_iter().for_each`, `.enumerate().for_each`,
//! `par_chunks_mut`, and [`current_num_threads`].
//!
//! Unlike a sequential stub, this shim delivers real parallelism: items are
//! pulled from a shared queue by `std::thread::scope` workers. The kernels
//! in `tenblock-core` already chunk their work coarsely (a few items per
//! hardware thread), so a simple shared-queue pull loop — no work stealing —
//! recovers nearly all of rayon's benefit for these workloads.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};

/// Number of worker threads a parallel call will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Locks the shared work queue, recovering from poisoning.
///
/// If a worker panics while holding the lock, the mutex is poisoned; without
/// recovery every *other* worker would then panic on `lock().unwrap()`, and
/// the secondary panics would abort the process before `std::thread::scope`
/// can re-raise the original. Recovering the guard lets the surviving
/// workers drain (or observe an empty) queue and park at the scope join, so
/// the caller sees the original panic, not a pile-up.
fn lock_queue<'a, T>(
    queue: &'a Mutex<VecDeque<(usize, T)>>,
) -> MutexGuard<'a, VecDeque<(usize, T)>> {
    queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `f` over `items` on up to [`current_num_threads`] scoped threads.
/// Panics in workers propagate to the caller when the scope joins.
fn drive<T: Send, F: Fn(usize, T) + Sync>(items: Vec<T>, f: F) {
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let next = lock_queue(&queue).pop_front();
                match next {
                    Some((i, item)) => f(i, item),
                    None => break,
                }
            });
        }
    });
}

/// Like [`drive`], but runs `verify` over all items *before* any worker
/// starts. If `verify` rejects the batch, no task runs and the error is
/// returned — this is the entry point for checked execution
/// (`Threads::Checked` in `tenblock-core`), where the verifier is a
/// write-set disjointness check.
pub fn drive_checked<T, E, V, F>(items: Vec<T>, verify: V, f: F) -> Result<(), E>
where
    T: Send,
    V: FnOnce(&[T]) -> Result<(), E>,
    F: Fn(usize, T) + Sync,
{
    verify(&items)?;
    drive(items, f);
    Ok(())
}

/// Parallel iterator over an owned list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Consumes every item, in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        drive(self.items, |_, item| f(item));
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParEnumerate<T> {
        ParEnumerate { items: self.items }
    }
}

/// Index-carrying parallel iterator (result of [`ParIter::enumerate`]).
pub struct ParEnumerate<T> {
    items: Vec<T>,
}

impl<T: Send> ParEnumerate<T> {
    /// Consumes every `(index, item)` pair, in parallel.
    pub fn for_each<F: Fn((usize, T)) + Sync>(self, f: F) {
        drive(self.items, |i, item| f((i, item)));
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Parallel mutable-chunk splitting for slices.
pub trait ParallelSliceMut<T: Send> {
    /// Like `chunks_mut`, but the chunks are processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_everything() {
        let seen = AtomicUsize::new(0);
        (0..100usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|i| {
                seen.fetch_add(i, Ordering::Relaxed);
            });
        assert_eq!(seen.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn enumerate_indices_match_order() {
        let vals: Vec<u32> = (0..64).map(|i| i * 3).collect();
        let hits = AtomicUsize::new(0);
        vals.into_par_iter().enumerate().for_each(|(i, v)| {
            assert_eq!(v, i as u32 * 3);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn par_chunks_mut_covers_disjointly() {
        let mut data = vec![0u64; 1000];
        data.par_chunks_mut(64).enumerate().for_each(|(ci, rows)| {
            for r in rows {
                *r += ci as u64 + 1;
            }
        });
        // every element written exactly once, by its own chunk
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 64) as u64 + 1);
        }
    }

    #[test]
    fn lock_queue_recovers_a_poisoned_mutex() {
        use std::collections::VecDeque;
        use std::sync::Mutex;
        let queue: Mutex<VecDeque<(usize, u32)>> = Mutex::new([(0, 7), (1, 8)].into());
        // Poison the mutex by panicking while the guard is held.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = queue.lock().unwrap();
            panic!("poison");
        }));
        assert!(poison.is_err());
        assert!(queue.lock().is_err(), "mutex should be poisoned");
        // The recovering lock still hands out the data.
        assert_eq!(super::lock_queue(&queue).pop_front(), Some((0, 7)));
        assert_eq!(super::lock_queue(&queue).pop_front(), Some((1, 8)));
    }

    #[test]
    fn worker_panic_propagates_once() {
        let processed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            (0..64usize)
                .collect::<Vec<_>>()
                .into_par_iter()
                .for_each(|i| {
                    if i == 3 {
                        panic!("task 3 failed");
                    }
                    processed.fetch_add(1, Ordering::Relaxed);
                });
        }));
        // The original panic reaches the caller (not an abort from a
        // secondary poisoning panic), and the surviving workers made
        // progress on other items.
        assert!(result.is_err());
        assert!(processed.load(Ordering::Relaxed) <= 63);
    }

    #[test]
    fn drive_checked_runs_only_after_verification() {
        let sum = AtomicUsize::new(0);
        let ok: Result<(), &str> = super::drive_checked(
            (0..16usize).collect(),
            |items| {
                if items.len() == 16 {
                    Ok(())
                } else {
                    Err("bad batch")
                }
            },
            |_, v| {
                sum.fetch_add(v, Ordering::Relaxed);
            },
        );
        assert!(ok.is_ok());
        assert_eq!(sum.load(Ordering::Relaxed), 15 * 16 / 2);

        let ran = AtomicUsize::new(0);
        let err: Result<(), &str> = super::drive_checked(
            vec![1usize, 2, 3],
            |_| Err("rejected"),
            |_, _| {
                ran.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(err, Err("rejected"));
        assert_eq!(
            ran.load(Ordering::Relaxed),
            0,
            "no task may run after a rejected batch"
        );
    }
}
