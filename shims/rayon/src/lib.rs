//! Offline shim for the `rayon` crate, covering the API subset this
//! workspace uses: `into_par_iter().for_each`, `.enumerate().for_each`,
//! `par_chunks_mut`, and [`current_num_threads`].
//!
//! Unlike a sequential stub, this shim delivers real parallelism: items are
//! pulled from a shared queue by `std::thread::scope` workers. The kernels
//! in `tenblock-core` already chunk their work coarsely (a few items per
//! hardware thread), so a simple shared-queue pull loop — no work stealing —
//! recovers nearly all of rayon's benefit for these workloads.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Number of worker threads a parallel call will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over `items` on up to [`current_num_threads`] scoped threads.
/// Panics in workers propagate to the caller when the scope joins.
fn drive<T: Send, F: Fn(usize, T) + Sync>(items: Vec<T>, f: F) {
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let next = queue.lock().unwrap().pop_front();
                match next {
                    Some((i, item)) => f(i, item),
                    None => break,
                }
            });
        }
    });
}

/// Parallel iterator over an owned list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Consumes every item, in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        drive(self.items, |_, item| f(item));
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParEnumerate<T> {
        ParEnumerate { items: self.items }
    }
}

/// Index-carrying parallel iterator (result of [`ParIter::enumerate`]).
pub struct ParEnumerate<T> {
    items: Vec<T>,
}

impl<T: Send> ParEnumerate<T> {
    /// Consumes every `(index, item)` pair, in parallel.
    pub fn for_each<F: Fn((usize, T)) + Sync>(self, f: F) {
        drive(self.items, |i, item| f((i, item)));
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Parallel mutable-chunk splitting for slices.
pub trait ParallelSliceMut<T: Send> {
    /// Like `chunks_mut`, but the chunks are processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_everything() {
        let seen = AtomicUsize::new(0);
        (0..100usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|i| {
                seen.fetch_add(i, Ordering::Relaxed);
            });
        assert_eq!(seen.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn enumerate_indices_match_order() {
        let vals: Vec<u32> = (0..64).map(|i| i * 3).collect();
        let hits = AtomicUsize::new(0);
        vals.into_par_iter().enumerate().for_each(|(i, v)| {
            assert_eq!(v, i as u32 * 3);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn par_chunks_mut_covers_disjointly() {
        let mut data = vec![0u64; 1000];
        data.par_chunks_mut(64).enumerate().for_each(|(ci, rows)| {
            for r in rows {
                *r += ci as u64 + 1;
            }
        });
        // every element written exactly once, by its own chunk
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 64) as u64 + 1);
        }
    }
}
