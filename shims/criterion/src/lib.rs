//! Offline shim for the `criterion` crate: enough API for this
//! workspace's benches (`benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros).
//!
//! Statistics are deliberately simple: each benchmark runs
//! `sample_size` timed iterations after one warm-up and reports
//! min / median / mean to stdout. No outlier analysis, plots, or
//! saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle passed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, name: S) -> BenchmarkGroup {
        println!("\n== {} ==", name.as_ref());
        BenchmarkGroup { sample_size: 10 }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id made of a function name and a parameter value.
    pub fn new<D: Display>(name: &str, parameter: D) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Id made of the parameter value alone.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark. `id` may be a [`BenchmarkId`] or a plain name
    /// (`&str`), as in upstream criterion.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mut s = b.samples;
        if s.is_empty() {
            println!("  {:<24} (no samples)", id.label);
            return self;
        }
        s.sort_unstable();
        let min = s[0];
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<Duration>() / s.len() as u32;
        println!(
            "  {:<24} min {:>12.6?}  median {:>12.6?}  mean {:>12.6?}  ({} samples)",
            id.label,
            min,
            median,
            mean,
            s.len()
        );
        self
    }

    /// Ends the group (prints nothing; kept for API parity).
    pub fn finish(self) {}
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Declares a group function running each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // one warm-up + three samples
        assert_eq!(calls, 4);
    }

    criterion_group!(demo_group, demo_target);

    fn demo_target(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(1);
        g.bench_function(BenchmarkId::new("noop", 1), |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        demo_group();
    }
}
