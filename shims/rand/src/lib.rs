//! Offline shim for the `rand` crate (0.9 API surface used by this
//! workspace): [`Rng`], [`SeedableRng`], [`rngs::StdRng`],
//! [`seq::SliceRandom`], and [`seq::index::sample`].
//!
//! The build environment has no crates.io access, so this crate stands in
//! for the real `rand`. The generator is SplitMix64 — statistically solid
//! for the synthetic-data and shuffling uses here, not cryptographic. The
//! shim promises API compatibility only; the byte streams differ from
//! upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly over their full domain via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw word onto `0..span` without modulo bias (widening multiply).
#[inline]
fn bounded(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling interface (blanket-implemented over
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's domain (`f64` in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // one warm-up step decorrelates small seeds
            let _ = rng.next_u64();
            rng
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        use super::super::{Rng, RngCore};

        /// Result of [`sample`]: a set of distinct indices.
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The sampled indices, in sample order.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` (Floyd's
        /// algorithm). Panics if `amount > length`.
        pub fn sample<R: RngCore>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            let mut chosen = std::collections::HashSet::with_capacity(amount);
            let mut out = Vec::with_capacity(amount);
            for j in length - amount..length {
                let t = rng.random_range(0..=j);
                let pick = if chosen.insert(t) { t } else { j };
                if pick != t {
                    chosen.insert(pick);
                }
                out.push(pick);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f64 = a.random();
            let y: f64 = b.random();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
            let n = a.random_range(3u32..17);
            assert!((3..17).contains(&n));
            let m = b.random_range(0usize..=5);
            assert!(m <= 5);
            let _ = b.random_range(3u32..17);
            let _ = a.random_range(0usize..=5);
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn index_sample_is_distinct() {
        let mut rng = StdRng::seed_from_u64(9);
        let picks: Vec<usize> = super::seq::index::sample(&mut rng, 100, 30).into_vec();
        assert_eq!(picks.len(), 30);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 30);
        assert!(picks.iter().all(|&i| i < 100));
    }
}
