//! Offline shim for the `crossbeam` crate: the [`channel`] module only,
//! which is all this workspace uses (`tenblock-dist` message passing and
//! the `tenblock-serve` job queue).
//!
//! Channels are multi-producer **multi-consumer**, like crossbeam's and
//! unlike `std::sync::mpsc`. The implementation is a `Mutex<VecDeque>`
//! with two condvars; throughput is far below the real crate's lock-free
//! queues, but the payloads moved through these channels (tensors, MTTKRP
//! jobs, rank messages) are large enough that channel overhead is noise.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        buf: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        /// Signalled when the buffer gains an item or all senders leave.
        recv_ready: Condvar,
        /// Signalled when the buffer loses an item or all receivers leave.
        send_ready: Condvar,
    }

    /// Sending half of a channel. Cloning adds a producer.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of a channel. Cloning adds a consumer.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error: all receivers disconnected; the value is returned.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity; the value is returned.
        Full(T),
        /// All receivers disconnected; the value is returned.
        Disconnected(T),
    }

    /// Error: channel empty and all senders disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently buffered.
        Empty,
        /// Channel empty and all senders disconnected.
        Disconnected,
    }

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// Channel empty and all senders disconnected.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                buf: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = st.cap.is_some_and(|c| st.buf.len() >= c);
                if !full {
                    st.buf.push_back(value);
                    self.inner.recv_ready.notify_one();
                    return Ok(());
                }
                st = self.inner.send_ready.wait(st).unwrap();
            }
        }

        /// Sends `value` without blocking; a full bounded channel is a
        /// typed rejection, not a wait.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.inner.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.cap.is_some_and(|c| st.buf.len() >= c) {
                return Err(TrySendError::Full(value));
            }
            st.buf.push_back(value);
            self.inner.recv_ready.notify_one();
            Ok(())
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().buf.len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next message, blocking while the channel is empty
        /// and any sender remains.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = st.buf.pop_front() {
                    self.inner.send_ready.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.recv_ready.wait(st).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().unwrap();
            match st.buf.pop_front() {
                Some(v) => {
                    self.inner.send_ready.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = st.buf.pop_front() {
                    self.inner.send_ready.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .recv_ready
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().buf.len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.inner.recv_ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.inner.send_ready.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_fifo_roundtrip() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn disconnects_are_observed() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(err, Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn multi_consumer_drains_everything() {
        let (tx, rx) = unbounded();
        let n = 200;
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while let Ok(v) = rx.recv() {
                        got += v;
                    }
                    got
                })
            })
            .collect();
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, n * (n - 1) / 2);
    }
}
