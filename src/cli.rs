//! Implementation of the `tenblock` command-line tool.
//!
//! Subcommands (see [`run`]):
//!
//! * `stats <file>` — Table II-style statistics of a tensor file,
//! * `convert <in> <out>` — convert between FROSTT `.tns` text and the
//!   `.tnsb` binary container (direction inferred from extensions),
//! * `gen <dataset> <out>` — generate a Table II analogue,
//! * `bench <file>` — time every MTTKRP kernel on a tensor,
//! * `tune <file>` — run the Section V-C block-size heuristic,
//! * `decompose <file>` — CP-ALS or CP-APR with a chosen kernel,
//! * `serve` — start the in-process decomposition service (TCP),
//! * `check <file>` — run every kernel once in checked execution mode
//!   (blocking-invariant oracles + write-set race detection),
//! * `fuzz` — differential edge-case fuzzing of the ingest/kernel/tuner
//!   boundary with minimized repro output,
//! * `lint <root>` — run the zero-dependency workspace lint.
//!
//! `tune` and `decompose` accept `--plan-cache <path>` to share tuned
//! block-size plans with each other and with a running `serve` instance.

use std::path::Path;
use std::sync::Arc;
use tenblock_core::obs::{Rec, TraceRecorder};
use tenblock_core::timing::time_reps;
use tenblock_core::tune::grid_for_tile_budget;
use tenblock_core::{build_kernel, tune, ExecPolicy, KernelConfig, KernelKind, TuneOptions};
use tenblock_cpd::{cp_apr, CpAls, CpAlsOptions, CpAlsStream, CpAprOptions};
use tenblock_serve::{PlanCache, PlanKey, Server, ServerConfig, TunedPlan};
use tenblock_tensor::gen::{Dataset, ALL_DATASETS};
use tenblock_tensor::{io, io_bin, CooTensor, DenseMatrix, TensorStats, TileStore};

/// A parsed command line: positional arguments and `--key value` flags.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` pairs.
    pub flags: Vec<(String, String)>,
}

impl Args {
    /// Parses raw arguments (no subcommand included).
    pub fn parse(raw: &[String]) -> Args {
        let mut args = Args::default();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                // Only consume the next token as this flag's value when it
                // isn't itself a flag, so valueless flags (`--parallel
                // --rank 8`) don't swallow their neighbor.
                let value = match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().cloned().unwrap(),
                    _ => String::new(),
                };
                args.flags.push((key.to_string(), value));
            } else {
                args.positional.push(a.clone());
            }
        }
        args
    }

    /// Looks up a flag value.
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses a flag into `T`, with a default.
    pub fn flag_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flag(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Loads a tensor by extension: `.tns` (FROSTT text) or `.tnsb` (binary).
pub fn load_tensor(path: &str) -> Result<CooTensor, String> {
    let p = Path::new(path);
    match p.extension().and_then(|e| e.to_str()) {
        Some("tns") => io::read_tns_file(p).map_err(|e| e.to_string()),
        Some("tnsb") => io_bin::read_bin_file(p).map_err(|e| e.to_string()),
        other => Err(format!(
            "unknown tensor extension {other:?} (expected .tns or .tnsb)"
        )),
    }
}

/// Saves a tensor by extension.
pub fn save_tensor(t: &CooTensor, path: &str) -> Result<(), String> {
    let p = Path::new(path);
    match p.extension().and_then(|e| e.to_str()) {
        Some("tns") => io::write_tns_file(t, p).map_err(|e| e.to_string()),
        Some("tnsb") => io_bin::write_bin_file(t, p).map_err(|e| e.to_string()),
        other => Err(format!(
            "unknown tensor extension {other:?} (expected .tns or .tnsb)"
        )),
    }
}

/// Resolves a data-set name from the Table II registry.
pub fn dataset_by_name(name: &str) -> Option<Dataset> {
    ALL_DATASETS
        .into_iter()
        .find(|d| d.spec().name.eq_ignore_ascii_case(name))
}

/// Resolves a kernel name.
pub fn kernel_by_name(name: &str) -> Option<KernelKind> {
    match name.to_ascii_lowercase().as_str() {
        "coo" => Some(KernelKind::Coo),
        "splatt" => Some(KernelKind::Splatt),
        "mb" => Some(KernelKind::Mb),
        "rankb" => Some(KernelKind::RankB),
        "mbrankb" | "mb+rankb" => Some(KernelKind::MbRankB),
        "csf" => Some(KernelKind::Csf),
        "bcoo" => Some(KernelKind::Bcoo),
        _ => None,
    }
}

/// Usage text.
pub const USAGE: &str =
    "tenblock — blocking-optimized sparse tensor kernels (IPDPS'18 reproduction)

USAGE:
  tenblock stats <file> [--grid AxBxC]
  tenblock convert <in> <out>
  tenblock gen <dataset> <out> [--nnz N] [--seed S]
  tenblock bench <file> [--rank R] [--reps N] [--grid AxBxC] [--strip W]
                       [--trace [path]]
  tenblock bench --json [--out PATH] [--suite pinned|quick] [--reps N]
  tenblock bench --compare BASELINE.json [--current RECORD.json]
                 [--suite pinned|quick] [--reps N]
  tenblock tune <file> [--rank R] [--plan-cache <path>] [--trace [path]]
  tenblock decompose <file> [--rank R] [--iters N] [--method als|apr]
                            [--kernel splatt|mb|rankb|mbrankb|bcoo]
                            [--plan-cache <path>] [--trace [path]]
                            [--stream [--tile-budget BYTES] [--store <path>]
                             [--checked] [--assert-peak-rss BYTES]]
  tenblock serve --addr <host:port> [--workers N] [--queue N]
                 [--plan-cache <path>] [--max-resident N] [--spill-dir <dir>]
  tenblock check <file> [--rank R]
  tenblock fuzz [--seeds N] [--seed BASE] [--corpus dir]
  tenblock chaos [--seeds N]
  tenblock lint [root] [--json] [--baseline <path>] [--write-baseline <path>]

Files: .tns (FROSTT text) or .tnsb (tenblock binary).
`stats --grid AxBxC` additionally prints a block-occupancy histogram of
the mode-1 BCOO blocking under that grid (how many nonzeros each
nonempty block holds — the profile that decides whether the BCOO
dense micro-kernel pays off).
Datasets: Poisson1-3, NELL2, Netflix, Reddit, Amazon (scaled analogues).
`bench --json` (no tensor file) runs the pinned benchmark suite — every
registry kernel × three synthetic generators × {serial, parallel}, plus a
streamed MTTKRP and the in-process serve path — and writes a schema-stable
BENCH_<date>.json record (override with --out). `bench --compare BASELINE`
diffs a record (freshly measured, or loaded via --current) against the
baseline and exits nonzero on a >10% same-machine regression or coverage
loss; cross-machine timing drift is advisory only.
--trace records execution spans (kernel calls, ALS iterations, tune
candidates) with Section IV byte/flop counters and writes chrome://tracing
JSON to `path` (default trace.json); open it at chrome://tracing or
https://ui.perfetto.dev.
`check` runs every kernel once under ExecPolicy::checked(): blocking
invariants are validated and each parallel task's output-row write set is
checked for races before the launch; violations print a structured report.
`fuzz` runs N deterministic seeds of adversarial tensors plus mutated .tns
and .tnsb (tile-framing) byte streams through every kernel, the tuner, the
planners, the parsers, and the dense reference; mismatches and panics
print minimized repros (and are written to --corpus, whose .tns/.tnsb
files are replayed first on later runs). Exits nonzero on any finding.
`chaos` runs a pinned matrix of fault-injection scenarios (every fault
site × {errno, transient errno, short read, bit flip, crash} × {first op,
mid-run, every Nth}) against store creation, streamed MTTKRP, and an
in-process serve registry with a spill tier, plus a kill -9 test
mid-`create_from_coo`. Each scenario must recover bit-exactly or fail
with a typed error; panics, hangs (60s watchdog), and half-written
stores visible to `open` are failures. --seeds N draws N scenario
instances round-robin over the matrix (N >= 90 covers every cell).
Exits nonzero on any violation.
`lint` runs the static-analysis passes over `root` (default `.`): the
line rules (unwrap in serve/core, undocumented core pub fns,
lock().unwrap() outside shims) plus panic-reachability from the declared
ingest/kernel/serve roots (with call-chain witnesses), lock-discipline
(no file/socket I/O under a sync.rs guard; lock order registry →
scheduler → plan-cache), kernel-contract completeness over KernelKind,
and index-overflow in the tensor crate's block arithmetic. Exits nonzero
on unwaived findings. --json emits the stable machine-readable report;
--baseline compares against a checked-in baseline (new findings fail,
newly-fixed ones warn); --write-baseline regenerates it.
`decompose --stream` runs CP-ALS out of core: the tensor is served from an
on-disk tile store (built on the fly for v1/.tns inputs, sized so two
tiles fit --tile-budget) and streamed per MTTKRP with double-buffered
prefetch; the factors match the in-memory path. --checked verifies each
tile's decoded rows against its bounds-derived band; --assert-peak-rss
fails the run if VmHWM exceeded the given bytes.
`serve --max-resident N` caps in-memory tensors: beyond N the registry
spills the least recently used to tile stores in --spill-dir (default a
temp dir) and streams them back on demand; {\"cmd\":\"list\"} reports
resident vs spilled handles and the stream counters.
The serve protocol is line-delimited JSON; see crates/serve/README.md.";

/// Parses a `--grid AxBxC` spec, clamping each axis into `1..=dim` so
/// oversized requests on small tensors degrade to coarser grids instead
/// of erroring.
fn parse_grid(spec: &str, dims: [usize; 3]) -> Result<[usize; 3], String> {
    let parts: Vec<usize> = spec
        .split(['x', 'X'])
        .map(|p| p.trim().parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("bad --grid `{spec}` (expected AxBxC, e.g. 4x4x2)"))?;
    if parts.len() != 3 || parts.contains(&0) {
        return Err(format!(
            "bad --grid `{spec}` (expected three positive axes AxBxC)"
        ));
    }
    Ok(std::array::from_fn(|ax| parts[ax].min(dims[ax].max(1))))
}

/// Resolves `--trace [path]`: present without a value means `trace.json`.
fn trace_path(args: &Args) -> Option<std::path::PathBuf> {
    args.flag("trace").map(|v| {
        if v.is_empty() {
            std::path::PathBuf::from("trace.json")
        } else {
            std::path::PathBuf::from(v)
        }
    })
}

/// Attaches `tracer` to `exec` when `--trace` was given.
fn with_tracing(
    exec: ExecPolicy,
    trace: &Option<std::path::PathBuf>,
    tracer: &Arc<TraceRecorder>,
) -> ExecPolicy {
    match trace {
        Some(_) => exec.with_recorder(Rec::new(Arc::clone(tracer) as _)),
        None => exec,
    }
}

/// Writes the recorded spans as chrome://tracing JSON; returns a footer
/// line for the command's output.
fn write_trace(tracer: &TraceRecorder, path: &Path) -> Result<String, String> {
    std::fs::write(path, tracer.to_chrome_json())
        .map_err(|e| format!("writing trace {}: {e}", path.display()))?;
    Ok(format!(
        "\nwrote {} spans (chrome://tracing JSON) to {}",
        tracer.snapshot().len(),
        path.display()
    ))
}

/// Peak resident set size (VmHWM) of this process in bytes, from
/// `/proc/self/status`. `None` off Linux or if the field is missing.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Where `decompose --stream` materializes the tile store when the input
/// is not already one: `--store <path>` or `<input>.tiles.tnsb`.
fn store_path(args: &Args, input: &Path) -> std::path::PathBuf {
    args.flag("store")
        .filter(|v| !v.is_empty())
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| input.with_extension("tiles.tnsb"))
}

/// `decompose --stream`: CP-ALS over a spilled tile store, never holding
/// the full tensor. A v2 `.tnsb` input is opened as-is; a v1 `.tnsb` is
/// re-tiled on disk in bounded memory (two streaming passes); a `.tns`
/// text file is loaded once to build the store (text has no random
/// access). The tile grid comes from `--tile-budget` via the tuner's
/// budget heuristic: expected tile ≤ budget/2, two tiles in flight.
fn decompose_stream(
    args: &Args,
    path: &str,
    rank: usize,
    iters: usize,
    method: &str,
) -> Result<String, String> {
    if method != "als" {
        return Err("--stream supports --method als only".to_string());
    }
    let budget: u64 = args.flag_or("tile-budget", 64u64 << 20);
    if budget == 0 {
        return Err("--tile-budget must be positive".to_string());
    }
    let trace = trace_path(args);
    let tracer = Arc::new(TraceRecorder::new());
    let base_exec = if args.flag("checked").is_some() {
        ExecPolicy::checked()
    } else {
        ExecPolicy::serial()
    };
    let exec = with_tracing(base_exec, &trace, &tracer);

    let p = Path::new(path);
    let (store, store_note) = match p.extension().and_then(|e| e.to_str()) {
        Some("tnsb") => {
            let hdr = io_bin::read_bin_header_file(p).map_err(|e| e.to_string())?;
            if hdr.version == io_bin::VERSION_TILES {
                let store = TileStore::open(p).map_err(|e| e.to_string())?;
                (store, format!("opened tile store {path}"))
            } else {
                if hdr.dims.len() != 3 {
                    return Err(format!(
                        "--stream needs a 3-mode tensor, {path} has order {}",
                        hdr.dims.len()
                    ));
                }
                let dims = [hdr.dims[0], hdr.dims[1], hdr.dims[2]];
                let grid = grid_for_tile_budget(dims, hdr.nnz as usize, budget);
                let dst = store_path(args, p);
                let store = TileStore::build_from_tnsb(p, grid, &dst).map_err(|e| e.to_string())?;
                (store, format!("tiled {path} -> {}", dst.display()))
            }
        }
        _ => {
            let t = load_tensor(path)?;
            let grid = grid_for_tile_budget(t.dims(), t.nnz(), budget);
            let dst = store_path(args, p);
            let store = TileStore::create_from_coo(&t, grid, &dst).map_err(|e| e.to_string())?;
            (store, format!("tiled {path} -> {}", dst.display()))
        }
    };

    let mut opts = CpAlsOptions::new(rank);
    opts.max_iters = iters;
    opts.kernel_cfg.strip_width = args.flag_or("strip", 16);
    opts.kernel_cfg.exec = exec;
    let solver = CpAlsStream::new(&store, opts);
    let result = solver.run().map_err(|e| e.to_string())?;
    let snap = solver.stats().snapshot();
    let n_tiles = store.n_tiles().max(1) as u64;
    let mut msg = format!(
        "CP-ALS (streamed) rank {rank}: fit {:.5} after {} iterations (converged: {})\n\
         {store_note}: {} tiles, grid {:?}, max tile {} B, budget {budget} B\n\
         streamed {} tiles / {} B in {} passes, prefetch stall {:.2} ms",
        result.fit_history.last().unwrap_or(&0.0),
        result.iterations,
        result.converged,
        store.n_tiles(),
        store.grid(),
        store.max_tile_bytes(),
        snap.tiles_loaded,
        snap.bytes_streamed,
        snap.tiles_loaded / n_tiles,
        snap.prefetch_stall_ns as f64 / 1e6,
    );
    if let Some(cap) = args.flag("assert-peak-rss") {
        let cap: u64 = cap
            .parse()
            .map_err(|_| format!("bad --assert-peak-rss `{cap}` (expected bytes)"))?;
        let rss = peak_rss_bytes().ok_or("peak RSS unavailable on this platform")?;
        if rss > cap {
            return Err(format!("peak RSS {rss} B exceeds the asserted cap {cap} B"));
        }
        msg.push_str(&format!("\npeak RSS {rss} B (under the {cap} B cap)"));
    }
    if let Some(tp) = trace {
        msg.push_str(&write_trace(&tracer, &tp)?);
    }
    Ok(msg)
}

/// UTC calendar date (`YYYY-MM-DD`) for the default `BENCH_<date>.json`
/// name, via the days-to-civil conversion (no date crate in the offline
/// workspace).
fn utc_date_string() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// `bench` without a tensor file: the pinned JSON suite and comparator.
/// `--json [--out PATH]` measures and writes a record; `--compare BASE`
/// gates a record (measured, or loaded via `--current`) against a
/// baseline, exiting nonzero on same-machine regressions or coverage loss.
fn bench_suite(args: &Args) -> Result<String, String> {
    use tenblock_bench::suite::{compare, run_suite, BenchRecord, CompareOptions, SuiteOptions};
    let mut opts = match args.flag("suite").unwrap_or("pinned") {
        "pinned" | "" => SuiteOptions::pinned(),
        "quick" => SuiteOptions::quick(),
        other => return Err(format!("bench: unknown suite `{other}` (pinned|quick)")),
    };
    if let Some(reps) = args.flag("reps") {
        opts.reps = reps
            .parse()
            .map_err(|_| format!("bench: bad --reps `{reps}`"))?;
    }
    let wants_json = args.flag("json").is_some() || args.flag("out").is_some();
    let compare_path = args.flag("compare");
    if !wants_json && compare_path.is_none() {
        return Err(
            "bench: pass a tensor <file>, or --json [--out PATH] / --compare BASELINE.json \
             for the suite"
                .to_string(),
        );
    }
    let load = |path: &str| -> Result<BenchRecord, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("bench: read {path}: {e}"))?;
        BenchRecord::parse(&text).map_err(|e| format!("bench: {path}: {e}"))
    };
    let current = match args.flag("current") {
        Some(path) if !path.is_empty() => load(path)?,
        _ => run_suite(&opts)?,
    };
    let mut out_lines = Vec::new();
    if wants_json {
        let out_path = match args.flag("out") {
            Some(p) if !p.is_empty() => p.to_string(),
            _ => format!("BENCH_{}.json", utc_date_string()),
        };
        tenblock_tensor::atomic_write(&out_path, current.to_file_string().as_bytes())
            .map_err(|e| format!("bench: write {out_path}: {e}"))?;
        out_lines.push(format!(
            "wrote {} suite record ({} entries, commit {}) -> {}",
            current.suite,
            current.entries.len(),
            current.commit,
            out_path
        ));
    }
    if let Some(base_path) = compare_path {
        let base = load(base_path)?;
        let report = compare(&base, &current, &CompareOptions::default());
        match report.gate() {
            Ok(text) => out_lines.push(text),
            Err(text) => {
                out_lines.push(text);
                return Err(out_lines.join("\n"));
            }
        }
    }
    Ok(out_lines.join("\n"))
}

/// Runs one subcommand; returns the text to print or an error message.
pub fn run(cmd: &str, args: &Args) -> Result<String, String> {
    match cmd {
        "stats" => {
            let path = args.positional.first().ok_or("stats: missing <file>")?;
            let t = load_tensor(path)?;
            let s = TensorStats::of(&t);
            let mut out = s.table_row(path);
            out.push_str(&format!(
                "\nfibers per mode: {:?}\nnnz per fiber:  {:?}",
                s.fibers,
                s.nnz_per_fiber.map(|v| (v * 100.0).round() / 100.0)
            ));
            if let Some(spec) = args.flag("grid") {
                let grid = parse_grid(spec, t.dims())?;
                let counts = tenblock_tensor::stats::block_occupancy(&t, 0, grid);
                out.push_str(&format!(
                    "\nblock occupancy (mode-1 BCOO, grid {}x{}x{}): {} nonempty blocks\n",
                    grid[0],
                    grid[1],
                    grid[2],
                    counts.len()
                ));
                out.push_str(&tenblock_tensor::stats::occupancy_histogram(&counts));
            }
            Ok(out)
        }
        "convert" => {
            let src = args.positional.first().ok_or("convert: missing <in>")?;
            let dst = args.positional.get(1).ok_or("convert: missing <out>")?;
            let t = load_tensor(src)?;
            save_tensor(&t, dst)?;
            Ok(format!("wrote {} nonzeros to {dst}", t.nnz()))
        }
        "gen" => {
            let name = args.positional.first().ok_or("gen: missing <dataset>")?;
            let dst = args.positional.get(1).ok_or("gen: missing <out>")?;
            let ds = dataset_by_name(name).ok_or_else(|| format!("unknown dataset `{name}`"))?;
            let spec = ds.spec();
            let nnz = args.flag_or("nnz", spec.default_nnz);
            let seed = args.flag_or("seed", 42u64);
            let t = ds.generate_with(spec.default_dims, nnz, seed);
            save_tensor(&t, dst)?;
            Ok(format!(
                "generated {} analogue: dims {:?}, {} nonzeros -> {dst}",
                spec.name,
                t.dims(),
                t.nnz()
            ))
        }
        "bench" => {
            let Some(path) = args.positional.first() else {
                return bench_suite(args);
            };
            let rank: usize = args.flag_or("rank", 64);
            let reps: usize = args.flag_or("reps", 3);
            let t = load_tensor(path)?;
            let factors: Vec<DenseMatrix> = t
                .dims()
                .iter()
                .map(|&d| DenseMatrix::from_fn(d, rank, |r, c| ((r * 7 + c) % 11) as f64 * 0.1))
                .collect();
            let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
            let mut out = DenseMatrix::zeros(t.dims()[0], rank);
            let trace = trace_path(args);
            let tracer = Arc::new(TraceRecorder::new());
            let grid = match args.flag("grid") {
                Some(spec) => parse_grid(spec, t.dims())?,
                None => [4, 4, 2],
            };
            let cfg = KernelConfig {
                grid,
                strip_width: args.flag_or("strip", 16),
                exec: with_tracing(ExecPolicy::serial(), &trace, &tracer),
            };
            let mut lines = vec![format!(
                "mode-1 MTTKRP on {path}: nnz {}, rank {rank}, grid {}x{}x{}, strip {} (min/mean/stddev of {reps}, 1 warmup)",
                t.nnz(),
                cfg.grid[0],
                cfg.grid[1],
                cfg.grid[2],
                cfg.strip_width,
            )];
            let nnz = t.nnz().max(1) as f64;
            for kind in KernelKind::ALL {
                let k = build_kernel(kind, &t, 0, &cfg);
                let stats = time_reps(1, reps, || k.mttkrp(&fs, &mut out));
                lines.push(format!(
                    "  {:<10} {:>10.4} s  mean {:>10.4} s  sd {:>9.4} s   {:>6.1} tensor B/nnz",
                    k.name(),
                    stats.min_secs,
                    stats.mean_secs,
                    stats.stddev_secs,
                    k.tensor_bytes() as f64 / nnz
                ));
            }
            let mut msg = lines.join("\n");
            if let Some(p) = trace {
                msg.push_str(&write_trace(&tracer, &p)?);
            }
            Ok(msg)
        }
        "tune" => {
            let path = args.positional.first().ok_or("tune: missing <file>")?;
            let rank: usize = args.flag_or("rank", 64);
            let t = load_tensor(path)?;
            let cache = open_plan_cache(args)?;
            let key = PlanKey::of(&TensorStats::of(&t), rank);
            if let Some(plan) = cache.as_ref().and_then(|c| c.lookup(key)) {
                return Ok(format!(
                    "plan cache hit: kernel {}, grid {}x{}x{}, strip width {} ({:.4} s/MTTKRP when tuned)",
                    plan.kernel,
                    plan.grid[0],
                    plan.grid[1],
                    plan.grid[2],
                    plan.strip_width,
                    plan.best_secs
                ));
            }
            let trace = trace_path(args);
            let tracer = Arc::new(TraceRecorder::new());
            let mut opts = TuneOptions::new(rank);
            opts.reps = 2;
            opts.exec = with_tracing(opts.exec, &trace, &tracer);
            let r = tune(&t, 0, &opts);
            if let Some(cache) = &cache {
                let plan = TunedPlan {
                    kernel: r.kind.as_str().to_string(),
                    grid: r.grid,
                    strip_width: r.strip_width,
                    best_secs: r.best_secs,
                };
                cache
                    .insert(key, plan)
                    .map_err(|e| format!("plan cache write failed: {e}"))?;
            }
            let mut msg = format!(
                "selected kernel {}, grid {}x{}x{}, strip width {} ({:.4} s/MTTKRP, {} candidates tried)",
                r.kind.as_str(),
                r.grid[0],
                r.grid[1],
                r.grid[2],
                r.strip_width,
                r.best_secs,
                r.history.len()
            );
            if let Some(p) = trace {
                msg.push_str(&write_trace(&tracer, &p)?);
            }
            Ok(msg)
        }
        "decompose" => {
            let path = args.positional.first().ok_or("decompose: missing <file>")?;
            let rank: usize = args.flag_or("rank", 16);
            let iters: usize = args.flag_or("iters", 20);
            let method = args.flag("method").unwrap_or("als");
            if args.flag("stream").is_some() {
                return decompose_stream(args, path, rank, iters, method);
            }
            let t = load_tensor(path)?;
            // A cached plan for this tensor's shape and rank beats the
            // fixed default grid (and, when `--kernel` is not given, its
            // tuned kernel kind beats the default); a miss keeps the
            // defaults (no tuning run is triggered implicitly).
            let trace = trace_path(args);
            let tracer = Arc::new(TraceRecorder::new());
            let plan = open_plan_cache(args)?
                .and_then(|c| c.lookup(PlanKey::of(&TensorStats::of(&t), rank)));
            let kernel = match args.flag("kernel") {
                Some(name) => kernel_by_name(name).ok_or("unknown kernel name")?,
                None => plan
                    .as_ref()
                    .and_then(|p| kernel_by_name(&p.kernel))
                    .unwrap_or(KernelKind::MbRankB),
            };
            let mut cfg = plan
                .map(|p| KernelConfig {
                    grid: p.grid,
                    strip_width: p.strip_width,
                    ..Default::default()
                })
                .unwrap_or(KernelConfig {
                    grid: [4, 2, 2],
                    strip_width: 16,
                    ..Default::default()
                });
            cfg.exec = with_tracing(ExecPolicy::auto(), &trace, &tracer);
            let mut msg = match method {
                "als" => {
                    let mut opts = CpAlsOptions::new(rank);
                    opts.max_iters = iters;
                    opts.kernel = kernel;
                    opts.kernel_cfg = cfg;
                    let result = CpAls::new(&t, opts).run(&t);
                    format!(
                        "CP-ALS rank {rank}: fit {:.5} after {} iterations (converged: {})",
                        result.fit_history.last().unwrap_or(&0.0),
                        result.iterations,
                        result.converged
                    )
                }
                "apr" => {
                    let mut opts = CpAprOptions::new(rank);
                    opts.max_iters = iters;
                    opts.kernel = kernel;
                    opts.kernel_cfg = cfg;
                    let result = cp_apr(&t, &opts);
                    format!(
                        "CP-APR rank {rank}: log-likelihood {:.2} after {} iterations (converged: {})",
                        result.loglik_history.last().unwrap_or(&f64::NEG_INFINITY),
                        result.iterations,
                        result.converged
                    )
                }
                other => return Err(format!("unknown method `{other}` (als|apr)")),
            };
            if let Some(p) = trace {
                msg.push_str(&write_trace(&tracer, &p)?);
            }
            Ok(msg)
        }
        "serve" => {
            let addr = args.flag("addr").unwrap_or("127.0.0.1:7607");
            let config = ServerConfig {
                workers: args.flag_or("workers", 2),
                queue_capacity: args.flag_or("queue", 16),
                plan_cache_path: args.flag("plan-cache").map(std::path::PathBuf::from),
                max_resident: match args.flag("max-resident") {
                    Some(v) => Some(
                        v.parse::<usize>()
                            .map_err(|_| format!("--max-resident: invalid count `{v}`"))?,
                    ),
                    None => None,
                },
                spill_dir: args.flag("spill-dir").map(std::path::PathBuf::from),
            };
            let server = Server::bind(addr, config).map_err(|e| format!("bind {addr}: {e}"))?;
            // Announce before blocking: `run` only returns output after the
            // server exits, which is never in normal operation.
            eprintln!("tenblock serve: listening on {}", server.addr());
            server.join();
            Ok("server stopped".to_string())
        }
        "check" => {
            let path = args.positional.first().ok_or("check: missing <file>")?;
            let rank: usize = args.flag_or("rank", 16);
            let t = load_tensor(path)?;
            let factors: Vec<DenseMatrix> = t
                .dims()
                .iter()
                .map(|&d| DenseMatrix::from_fn(d, rank, |r, c| ((r * 3 + c) % 7) as f64 * 0.25))
                .collect();
            let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
            let cfg = KernelConfig {
                grid: [4, 4, 2],
                strip_width: 16,
                exec: ExecPolicy::checked(),
            };
            let mut lines = vec![format!(
                "checked mode-1 MTTKRP on {path}: nnz {}, rank {rank}, {} workers",
                t.nnz(),
                cfg.exec.threads.workers()
            )];
            let mut failures = 0usize;
            for kind in KernelKind::ALL {
                let k = build_kernel(kind, &t, 0, &cfg);
                let mut out = DenseMatrix::zeros(t.dims()[0], rank);
                match k.mttkrp_checked(&fs, &mut out) {
                    Ok(()) => lines.push(format!(
                        "  {:<10} ok (invariants hold, write sets race-free)",
                        k.name()
                    )),
                    Err(report) => {
                        failures += 1;
                        lines.push(format!("  {:<10} FAIL\n{report}", k.name()));
                    }
                }
            }
            if failures > 0 {
                Err(lines.join("\n"))
            } else {
                Ok(lines.join("\n"))
            }
        }
        "fuzz" => {
            let opts = tenblock_fuzz::FuzzOptions {
                seeds: args.flag_or("seeds", 200u64),
                base_seed: args.flag_or("seed", 0x7eb0u64),
                corpus: args
                    .flag("corpus")
                    .filter(|p| !p.is_empty())
                    .map(std::path::PathBuf::from),
            };
            let report = tenblock_fuzz::run(&opts);
            if report.is_clean() {
                Ok(format!("{report}"))
            } else {
                Err(format!("{report}"))
            }
        }
        "chaos" => {
            if let Some(dir) = args.flag("child") {
                if dir.is_empty() {
                    return Err("--child requires a directory".to_string());
                }
                return crate::chaos::child_loop(dir);
            }
            let seeds = args.flag_or("seeds", 90u64);
            crate::chaos::run(seeds)
        }
        "lint" => {
            let root = args.positional.first().map(String::as_str).unwrap_or(".");
            let report = tenblock_core::check::lint_workspace(Path::new(root))
                .map_err(|e| format!("lint {root}: {e}"))?;
            if let Some(path) = args.flag("write-baseline") {
                if path.is_empty() {
                    return Err("--write-baseline requires a path".to_string());
                }
                let json = tenblock_core::check::baseline_json(&report);
                std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
                return Ok(format!(
                    "wrote baseline for {} finding(s) to {path}",
                    report.findings.len()
                ));
            }
            if let Some(path) = args.flag("baseline") {
                if path.is_empty() {
                    return Err("--baseline requires a path".to_string());
                }
                let raw =
                    std::fs::read_to_string(path).map_err(|e| format!("baseline {path}: {e}"))?;
                let keys = tenblock_core::check::parse_baseline_keys(&raw);
                let diff = tenblock_core::check::diff_baseline(&report, &keys);
                let mut out = String::new();
                for f in &diff.new {
                    out.push_str(&format!("new: {f}\n"));
                }
                for k in &diff.fixed {
                    out.push_str(&format!("fixed (update the baseline): {k}\n"));
                }
                out.push_str(&format!(
                    "{} file(s) scanned, {} new finding(s), {} fixed vs baseline",
                    report.files_scanned,
                    diff.new.len(),
                    diff.fixed.len()
                ));
                return if diff.new.is_empty() {
                    Ok(out)
                } else {
                    Err(out)
                };
            }
            if args.flag("json").is_some() {
                let json = tenblock_core::check::to_json(&report);
                return if report.is_clean() {
                    Ok(json)
                } else {
                    Err(json)
                };
            }
            if report.is_clean() {
                Ok(format!("{report}"))
            } else {
                Err(format!("{report}"))
            }
        }
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    }
}

/// Opens the `--plan-cache` file when the flag is present (with a value).
fn open_plan_cache(args: &Args) -> Result<Option<PlanCache>, String> {
    match args.flag("plan-cache") {
        Some(path) if !path.is_empty() => PlanCache::open(Path::new(path))
            .map(Some)
            .map_err(|e| format!("plan cache {path}: {e}")),
        Some(_) => Err("--plan-cache requires a path".to_string()),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> String {
        let dir = std::env::temp_dir().join("tenblock_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn arg_parsing() {
        let raw: Vec<String> = ["a.tns", "--rank", "32", "b.tnsb", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let a = Args::parse(&raw);
        assert_eq!(a.positional, vec!["a.tns", "b.tnsb"]);
        assert_eq!(a.flag("rank"), Some("32"));
        assert_eq!(a.flag_or("seed", 0u64), 7);
        assert_eq!(a.flag_or("missing", 5usize), 5);
    }

    #[test]
    fn valueless_flag_does_not_swallow_the_next_flag() {
        let raw: Vec<String> = ["--verbose", "--rank", "8", "x.tns", "--dry-run"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let a = Args::parse(&raw);
        // `--verbose` has no value; `--rank` must keep its `8`.
        assert_eq!(a.flag("verbose"), Some(""));
        assert_eq!(a.flag("rank"), Some("8"));
        assert_eq!(a.positional, vec!["x.tns"]);
        assert_eq!(a.flag("dry-run"), Some(""));
    }

    #[test]
    fn gen_stats_convert_roundtrip() {
        let tns = tmpfile("gen.tns");
        let raw = vec!["Poisson1".to_string(), tns.clone()];
        let mut args = Args::parse(&raw);
        args.flags.push(("nnz".into(), "2000".into()));
        args.flags.push(("seed".into(), "1".into()));
        let msg = run("gen", &args).unwrap();
        assert!(msg.contains("Poisson1"));

        let stats = run("stats", &Args::parse(std::slice::from_ref(&tns))).unwrap();
        assert!(stats.contains("fibers per mode"));
        assert!(!stats.contains("block occupancy"), "histogram is opt-in");

        let mut gridded = Args::parse(std::slice::from_ref(&tns));
        gridded.flags.push(("grid".into(), "4x4x2".into()));
        let stats = run("stats", &gridded).unwrap();
        assert!(stats.contains("block occupancy"), "{stats}");
        assert!(stats.contains("nnz/block"), "{stats}");

        let mut bad = Args::parse(std::slice::from_ref(&tns));
        bad.flags.push(("grid".into(), "4x0x2".into()));
        assert!(run("stats", &bad).is_err(), "zero axis must be rejected");

        let tnsb = tmpfile("gen.tnsb");
        let msg = run("convert", &Args::parse(&[tns.clone(), tnsb.clone()])).unwrap();
        assert!(msg.contains("wrote"));
        let a = load_tensor(&tns).unwrap();
        let b = load_tensor(&tnsb).unwrap();
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn bench_tune_decompose_smoke() {
        let tns = tmpfile("small.tnsb");
        let mut args = Args::parse(&["Poisson1".to_string(), tns.clone()]);
        args.flags.push(("nnz".into(), "3000".into()));
        run("gen", &args).unwrap();

        let mut bargs = Args::parse(std::slice::from_ref(&tns));
        bargs.flags.push(("rank".into(), "8".into()));
        bargs.flags.push(("reps".into(), "1".into()));
        let bench = run("bench", &bargs).unwrap();
        assert!(bench.contains("SPLATT"));
        assert!(bench.contains("MB+RankB"));
        assert!(bench.contains("BCOO"));

        let tune_out = run("tune", &bargs).unwrap();
        assert!(tune_out.contains("selected kernel"));
        assert!(tune_out.contains("grid"));

        let mut dargs = Args::parse(std::slice::from_ref(&tns));
        dargs.flags.push(("rank".into(), "4".into()));
        dargs.flags.push(("iters".into(), "3".into()));
        let als = run("decompose", &dargs).unwrap();
        assert!(als.contains("CP-ALS"));
        dargs.flags.push(("method".into(), "apr".into()));
        let apr = run("decompose", &dargs).unwrap();
        assert!(apr.contains("CP-APR"));
    }

    fn parse_fit(msg: &str) -> f64 {
        let at = msg.find("fit ").expect("fit in output") + 4;
        msg[at..]
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .expect("numeric fit")
    }

    #[test]
    fn decompose_stream_matches_in_memory_and_reports_counters() {
        let tnsb = tmpfile("stream_src.tnsb");
        let mut gargs = Args::parse(&["Poisson1".to_string(), tnsb.clone()]);
        gargs.flags.push(("nnz".into(), "4000".into()));
        gargs.flags.push(("seed".into(), "11".into()));
        run("gen", &gargs).unwrap();

        let mut mem = Args::parse(std::slice::from_ref(&tnsb));
        mem.flags.push(("rank".into(), "4".into()));
        mem.flags.push(("iters".into(), "5".into()));
        let in_memory = run("decompose", &mem).unwrap();

        // Tile budget far below the tensor's entry footprint forces a
        // real multi-tile grid; checked mode and the RSS assertion ride
        // along.
        let store = tmpfile("stream_src.tiles.tnsb");
        let mut st = mem.clone();
        st.flags.push(("stream".into(), String::new()));
        st.flags.push(("tile-budget".into(), "16384".into()));
        st.flags.push(("store".into(), store.clone()));
        st.flags.push(("checked".into(), String::new()));
        st.flags
            .push(("assert-peak-rss".into(), (1u64 << 40).to_string()));
        let streamed = run("decompose", &st).unwrap();
        assert!(streamed.contains("CP-ALS (streamed)"), "{streamed}");
        assert!(streamed.contains("passes"), "{streamed}");
        assert!(streamed.contains("peak RSS"), "{streamed}");
        assert!(
            (parse_fit(&streamed) - parse_fit(&in_memory)).abs() < 1e-4,
            "streamed vs in-memory fit:\n{streamed}\n{in_memory}"
        );
        // 5 iterations x 3 modes + the norm pass = 16 passes.
        assert!(streamed.contains("in 16 passes"), "{streamed}");

        // The materialized store is a valid v2 input on its own.
        let mut reopened = Args::parse(std::slice::from_ref(&store));
        reopened.flags.push(("rank".into(), "4".into()));
        reopened.flags.push(("iters".into(), "5".into()));
        reopened.flags.push(("stream".into(), String::new()));
        let again = run("decompose", &reopened).unwrap();
        assert!(again.contains("opened tile store"), "{again}");
        assert!(
            (parse_fit(&again) - parse_fit(&streamed)).abs() < 1e-12,
            "same store, same fit:\n{again}\n{streamed}"
        );

        // APR has no streaming path: typed refusal, not a panic.
        let mut apr = st.clone();
        apr.flags.push(("method".into(), "apr".into()));
        assert!(run("decompose", &apr).is_err());
    }

    #[test]
    fn plan_cache_flag_shares_plans_between_tune_and_decompose() {
        let tns = tmpfile("plan_cached.tnsb");
        let mut gargs = Args::parse(&["Poisson1".to_string(), tns.clone()]);
        gargs.flags.push(("nnz".into(), "2000".into()));
        run("gen", &gargs).unwrap();

        let cache = tmpfile("plans.json");
        let _ = std::fs::remove_file(&cache);
        let mut targs = Args::parse(std::slice::from_ref(&tns));
        targs.flags.push(("rank".into(), "8".into()));
        targs.flags.push(("plan-cache".into(), cache.clone()));
        let first = run("tune", &targs).unwrap();
        assert!(first.contains("selected kernel"), "{first}");
        let second = run("tune", &targs).unwrap();
        assert!(second.contains("plan cache hit"), "{second}");

        let mut dargs = Args::parse(std::slice::from_ref(&tns));
        dargs.flags.push(("rank".into(), "8".into()));
        dargs.flags.push(("iters".into(), "2".into()));
        dargs.flags.push(("plan-cache".into(), cache));
        let als = run("decompose", &dargs).unwrap();
        assert!(als.contains("CP-ALS"), "{als}");
    }

    #[test]
    fn decompose_trace_writes_chrome_json() {
        let tns = tmpfile("traced.tnsb");
        let mut gargs = Args::parse(&["Poisson1".to_string(), tns.clone()]);
        gargs.flags.push(("nnz".into(), "2000".into()));
        run("gen", &gargs).unwrap();

        let out = tmpfile("trace.json");
        let _ = std::fs::remove_file(&out);
        let mut dargs = Args::parse(std::slice::from_ref(&tns));
        dargs.flags.push(("rank".into(), "4".into()));
        dargs.flags.push(("iters".into(), "2".into()));
        dargs.flags.push(("kernel".into(), "splatt".into()));
        dargs.flags.push(("trace".into(), out.clone()));
        let msg = run("decompose", &dargs).unwrap();
        assert!(msg.contains("wrote"), "{msg}");

        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.starts_with('['), "not a chrome event array");
        assert!(json.contains("\"ph\""));
        assert!(json.contains("cpd/als/iter"));
        assert!(json.contains("mttkrp/SPLATT"));
        assert!(json.contains("tensor_bytes"));
    }

    #[test]
    fn fuzz_smoke_is_clean() {
        let mut args = Args::default();
        args.flags.push(("seeds".into(), "15".into()));
        let msg = run("fuzz", &args).unwrap();
        assert!(msg.contains("no findings"), "{msg}");
        assert!(msg.contains("15 seed(s)"), "{msg}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(run("stats", &Args::default()).is_err());
        assert!(run("nonsense", &Args::default()).is_err());
        assert!(load_tensor("/nonexistent.xyz").is_err());
        let mut dargs = Args::parse(&["x.tns".to_string()]);
        dargs.flags.push(("method".into(), "magic".into()));
        assert!(run("decompose", &dargs).is_err());
        assert!(run("help", &Args::default()).unwrap().contains("USAGE"));
    }
}
