//! The `tenblock` command-line tool. See [`tenblock::cli::USAGE`].

use tenblock::cli::{run, Args, USAGE};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let args = Args::parse(&raw[1..]);
    match run(cmd, &args) {
        Ok(text) => println!("{text}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
