//! `tenblock chaos` — a pinned matrix of deterministic fault scenarios
//! run against the real persistence, streaming, and serve paths.
//!
//! Every scenario arms one [`FaultPolicy`] (fault site × action × trigger)
//! and drives a real workload through it, then asserts the fault-tolerance
//! contract:
//!
//! * **no panics** — each scenario runs on its own thread; a panic is a
//!   reported failure, not a crashed harness;
//! * **no hangs** — a watchdog timeout bounds every scenario;
//! * **typed errors or bit-exact recovery** — a faulted operation either
//!   returns a typed error ([`BinError`], [`StreamError`],
//!   [`RegistryError`]) or succeeds with output identical to the healthy
//!   run (byte-flip faults are exempt from the bit-exactness clause: the
//!   `.tnsb` payload carries no checksum, so a value flip is undetectable
//!   by design — those scenarios still assert no-panic/no-hang and
//!   structural validity);
//! * **no half-written stores visible** — whenever a final `.tnsb` path
//!   exists, [`TileStore::open`] must load it fully valid; temp-file
//!   litter from a simulated crash is expected and ignored.
//!
//! The `--seeds N` budget draws N scenario instances round-robin from the
//! matrix, so any N ≥ the matrix size covers every combination at least
//! once. A separate kill -9 test re-executes this binary in a child
//! (`chaos --child <dir>`) that writes stores in a loop, SIGKILLs it
//! mid-write, and verifies no loadable partial store was published.

use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::Duration;
use tenblock_core::{ExecPolicy, StreamError, StreamingMttkrp};
use tenblock_faults::{FaultAction, FaultOp, FaultPolicy, Trigger};
use tenblock_serve::Registry;
use tenblock_tensor::gen::uniform_tensor;
use tenblock_tensor::{CooTensor, DenseMatrix, TileStore};

/// Per-scenario watchdog: anything slower than this counts as a hang.
const WATCHDOG: Duration = Duration::from_secs(60);

/// Which workload the fault is injected into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Site {
    /// `TileStore::create_from_coo_with` (write/sync/rename path).
    Create(FaultOp),
    /// `StreamingMttkrp` tile loads via `ExecPolicy::with_faults`.
    StreamRead,
    /// Registry spill writes under an LRU cap.
    SpillWrite,
    /// Registry reload of a spilled store.
    ReloadRead,
}

impl Site {
    fn name(self) -> &'static str {
        match self {
            Site::Create(FaultOp::Write) => "create-write",
            Site::Create(FaultOp::Sync) => "create-sync",
            Site::Create(FaultOp::Rename) => "create-rename",
            Site::Create(FaultOp::Read) => "create-read",
            Site::StreamRead => "stream-read",
            Site::SpillWrite => "spill-write",
            Site::ReloadRead => "reload-read",
        }
    }

    fn op(self) -> FaultOp {
        match self {
            Site::Create(op) => op,
            Site::StreamRead | Site::ReloadRead => FaultOp::Read,
            Site::SpillWrite => FaultOp::Write,
        }
    }
}

/// Fault action, named for the report. `EAGAIN` is the transient probe
/// (heals after two firings, exercising the retry paths); `EIO` is the
/// permanent one. `EINTR` would be silently absorbed by
/// `Write::write_all`, which retries `Interrupted` itself.
const ACTIONS: [(&str, FaultAction, bool); 5] = [
    ("eio", FaultAction::Errno(5), false),
    ("eagain-transient", FaultAction::Errno(11), true),
    ("short", FaultAction::ShortRead, false),
    ("flip", FaultAction::FlipByte, false),
    ("crash", FaultAction::Crash, false),
];

/// First-op, mid-run, and every-Nth triggers — the ISSUE's pinned set.
const TRIGGERS: [(&str, Trigger); 3] = [
    ("first", Trigger::Nth(0)),
    ("mid", Trigger::Nth(7)),
    ("every3", Trigger::EveryNth(3)),
];

const SITES: [Site; 6] = [
    Site::Create(FaultOp::Write),
    Site::Create(FaultOp::Sync),
    Site::Create(FaultOp::Rename),
    Site::StreamRead,
    Site::SpillWrite,
    Site::ReloadRead,
];

/// One drawn scenario instance.
#[derive(Debug, Clone)]
struct Scenario {
    site: Site,
    action_name: &'static str,
    action: FaultAction,
    transient: bool,
    trigger_name: &'static str,
    trigger: Trigger,
    seed: u64,
}

impl Scenario {
    fn label(&self) -> String {
        format!(
            "{}/{}/{}@{}",
            self.site.name(),
            self.action_name,
            self.trigger_name,
            self.seed
        )
    }

    fn policy(&self) -> FaultPolicy {
        if self.transient {
            FaultPolicy::transient(self.site.op(), self.action, self.trigger, self.seed, 2)
        } else {
            FaultPolicy::new(self.site.op(), self.action, self.trigger, self.seed)
        }
    }

    /// Whether bit-exactness can be asserted on a successful run. A byte
    /// flip that lands in an unchecksummed payload is silent by design.
    fn exactness_holds(&self) -> bool {
        self.action_name != "flip"
    }
}

/// Draws the `i`-th scenario: round-robin over the pinned matrix with a
/// per-instance seed, so `--seeds N >= matrix size` covers everything.
fn scenario(i: u64) -> Scenario {
    let n_actions = ACTIONS.len() as u64;
    let n_triggers = TRIGGERS.len() as u64;
    let cell = i % (SITES.len() as u64 * n_actions * n_triggers);
    let site = SITES[(cell / (n_actions * n_triggers)) as usize];
    let (action_name, action, transient) = ACTIONS[((cell / n_triggers) % n_actions) as usize];
    let (trigger_name, trigger) = TRIGGERS[(cell % n_triggers) as usize];
    Scenario {
        site,
        action_name,
        action,
        transient,
        trigger_name,
        trigger,
        seed: 0x9e37 ^ i,
    }
}

/// Sorted `(idx, val_bits)` pairs — the bit-exact content fingerprint.
fn content_of(coo: &CooTensor) -> Vec<([u32; 3], u64)> {
    let mut v: Vec<_> = coo
        .entries()
        .iter()
        .map(|e| (e.idx, e.val.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

/// Asserts that whatever sits at `path` is invisible or fully valid:
/// either the file does not exist, or `open` + `to_coo` succeed and (when
/// `expect` is given) match it bit for bit. With `tolerate_corrupt`
/// (byte-flip scenarios) a *typed* decode failure is also acceptable — a
/// flipped payload byte can make a value non-finite, and detecting that
/// with a `Format` error is correct behavior, not a partial write.
fn assert_no_partial(
    path: &Path,
    expect: Option<&Vec<([u32; 3], u64)>>,
    exact: bool,
    tolerate_corrupt: bool,
) -> Result<(), String> {
    if !path.exists() {
        return Ok(());
    }
    let store = match TileStore::open(path) {
        Ok(store) => store,
        Err(_) if tolerate_corrupt => return Ok(()),
        Err(e) => {
            return Err(format!(
                "half-written store visible at {}: {e}",
                path.display()
            ))
        }
    };
    let coo = match store.to_coo() {
        Ok(coo) => coo,
        Err(_) if tolerate_corrupt => return Ok(()),
        Err(e) => {
            return Err(format!(
                "store at {} opened but won't decode: {e}",
                path.display()
            ))
        }
    };
    if let (Some(expect), true) = (expect, exact) {
        if &content_of(&coo) != expect {
            return Err(format!(
                "store at {} loads but differs from the written tensor",
                path.display()
            ));
        }
    }
    Ok(())
}

/// Sweeps a directory: every visible `.tnsb` must be fully valid
/// (temp-file litter from simulated crashes is allowed and ignored).
fn assert_dir_clean(dir: &Path, tolerate_corrupt: bool) -> Result<(), String> {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return Ok(());
    };
    for entry in rd.filter_map(|e| e.ok()) {
        let p = entry.path();
        if p.is_file() && p.extension().is_some_and(|e| e == "tnsb") {
            assert_no_partial(&p, None, false, tolerate_corrupt)?;
        }
    }
    Ok(())
}

fn run_create(sc: &Scenario, dir: &Path) -> Result<(), String> {
    let coo = uniform_tensor([18, 14, 10], 600, sc.seed);
    let expect = content_of(&coo);
    let path = dir.join("store.tnsb");
    // A create error is typed — the acceptable failure shape; only a
    // success has postconditions to check.
    if let Ok(store) = TileStore::create_from_coo_with(&coo, [3, 2, 2], &path, sc.policy()) {
        match store.to_coo() {
            Ok(back) => {
                if sc.exactness_holds() && content_of(&back) != expect {
                    return Err("create succeeded but round-trip is not bit-exact".into());
                }
            }
            // A flipped payload byte may be caught only at decode time
            // (non-finite value) — typed detection is acceptable.
            Err(_) if !sc.exactness_holds() => {}
            Err(e) => return Err(format!("decode-back: {e}")),
        }
    }
    assert_no_partial(
        &path,
        Some(&expect),
        sc.exactness_holds(),
        !sc.exactness_holds(),
    )
}

fn run_stream(sc: &Scenario, dir: &Path) -> Result<(), String> {
    let coo = uniform_tensor([20, 14, 10], 800, sc.seed);
    let path = dir.join("stream.tnsb");
    let store = TileStore::create_from_coo(&coo, [2, 2, 2], &path)
        .map_err(|e| format!("setup create: {e}"))?;
    let rank = 6;
    let factors: Vec<DenseMatrix> = coo
        .dims()
        .iter()
        .map(|&d| DenseMatrix::from_fn(d, rank, |r, c| ((r * 7 + c) % 13) as f64 * 0.25 - 1.0))
        .collect();
    let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
    let mut expect = DenseMatrix::zeros(coo.dims()[0], rank);
    StreamingMttkrp::new(&store, 0, 16)
        .run(&fs, &mut expect)
        .map_err(|e| format!("healthy baseline run failed: {e}"))?;
    let mut got = DenseMatrix::zeros(coo.dims()[0], rank);
    let res = StreamingMttkrp::new(&store, 0, 16)
        .with_exec(ExecPolicy::serial().with_faults(sc.policy()))
        .run(&fs, &mut got);
    match res {
        Ok(()) => {
            if sc.exactness_holds() {
                let same = expect
                    .as_slice()
                    .iter()
                    .zip(got.as_slice())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                if !same {
                    return Err("stream recovered but output is not bit-exact".into());
                }
            }
        }
        // Every loss shape must arrive as a typed StreamError.
        Err(StreamError::Io { .. })
        | Err(StreamError::Load(_))
        | Err(StreamError::Prefetch(_))
        | Err(StreamError::Race(_)) => {}
    }
    Ok(())
}

fn run_spill(sc: &Scenario, dir: &Path) -> Result<(), String> {
    let reg = Registry::with_spill(dir, 1).with_faults(sc.policy());
    reg.register("a", uniform_tensor([14, 10, 8], 350, sc.seed))
        .map_err(|e| format!("register a: {e}"))?;
    reg.register("b", uniform_tensor([10, 10, 10], 250, sc.seed ^ 1))
        .map_err(|e| format!("register b: {e}"))?;
    // Graceful degradation: both handles stay registered, whether or not
    // the spill succeeded, and any published store is fully valid.
    if reg.len() != 2 {
        return Err(format!("registry lost a handle: {:?}", reg.names()));
    }
    assert_dir_clean(dir, !sc.exactness_holds())
}

fn run_reload(sc: &Scenario, dir: &Path) -> Result<(), String> {
    let reg = Registry::with_spill(dir, 1).with_faults(sc.policy());
    let a = reg
        .register("a", uniform_tensor([14, 10, 8], 350, sc.seed))
        .map_err(|e| format!("register a: {e}"))?;
    let fp = a.fingerprint;
    drop(a);
    reg.register("b", uniform_tensor([10, 10, 10], 250, sc.seed ^ 1))
        .map_err(|e| format!("register b: {e}"))?;
    if !reg.spilled_names().contains(&"a".to_string()) {
        // Spill itself failed (write faults don't arm on this site, but a
        // crash policy poisons every later op) — degradation already
        // covered by the spill site; nothing to reload.
        return assert_dir_clean(dir, !sc.exactness_holds());
    }
    // A reload error is a typed RegistryError — acceptable; a success
    // must hand back the tensor we spilled.
    if let Ok(entry) = reg.get("a") {
        if sc.exactness_holds() && entry.fingerprint != fp {
            return Err("reload succeeded with a different fingerprint".into());
        }
    }
    Ok(())
}

/// Runs one scenario in a watchdog-bounded thread. Returns an error
/// string on contract violation, panic, or hang.
fn run_scenario(i: u64, base: &Path) -> Result<(), String> {
    let sc = scenario(i);
    let dir = base.join(format!("s{i}"));
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir: {e}"))?;
    let (tx, rx) = mpsc::channel();
    let sc2 = sc.clone();
    let dir2 = dir.clone();
    let worker = std::thread::spawn(move || {
        let out = match sc2.site {
            Site::Create(_) => run_create(&sc2, &dir2),
            Site::StreamRead => run_stream(&sc2, &dir2),
            Site::SpillWrite => run_spill(&sc2, &dir2),
            Site::ReloadRead => run_reload(&sc2, &dir2),
        };
        let _ = tx.send(out);
    });
    let verdict = match rx.recv_timeout(WATCHDOG) {
        Ok(res) => {
            let _ = worker.join();
            res
        }
        // A panicking worker drops its sender without sending: that is a
        // disconnect, not a hang.
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            let _ = worker.join();
            Err("worker thread PANICKED".to_string())
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // The worker is wedged; leave it detached and report the hang.
            return Err(format!("{}: HANG (watchdog {:?})", sc.label(), WATCHDOG));
        }
    };
    let _ = std::fs::remove_dir_all(&dir);
    verdict.map_err(|e| format!("{}: {e}", sc.label()))
}

/// The kill -9 test: spawn this binary in child mode (an endless
/// `create_from_coo` loop), SIGKILL it mid-write, then verify nothing
/// half-written is visible at any final path.
fn run_kill9(base: &Path) -> Result<String, String> {
    let dir = base.join("kill9");
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir: {e}"))?;
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut child = std::process::Command::new(exe)
        .arg("chaos")
        .arg("--child")
        .arg(&dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn child: {e}"))?;
    // Wait until it has actually published a couple of stores (process
    // startup can eat a fixed sleep whole), then kill it mid-write of a
    // later one.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let seen = std::fs::read_dir(&dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "tnsb"))
                    .count()
            })
            .unwrap_or(0);
        if seen >= 2 || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().map_err(|e| format!("kill: {e}"))?;
    let _ = child.wait();
    let mut published = 0usize;
    let mut litter = 0usize;
    for entry in std::fs::read_dir(&dir)
        .map_err(|e| format!("scan: {e}"))?
        .filter_map(|e| e.ok())
    {
        let p = entry.path();
        match p.extension().and_then(|e| e.to_str()) {
            Some("tnsb") => {
                assert_no_partial(&p, None, false, false)?;
                published += 1;
            }
            Some("tmp") => litter += 1,
            _ => {}
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    if published == 0 {
        return Err("child published no stores before the kill — test is vacuous".to_string());
    }
    Ok(format!(
        "kill -9: {published} published stores all valid, {litter} tmp litter file(s)"
    ))
}

/// Child mode for the kill -9 test: writes tile stores forever until the
/// parent kills the process.
pub fn child_loop(dir: &str) -> Result<String, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("chaos --child: mkdir: {e}"))?;
    let coo = uniform_tensor([40, 30, 20], 20_000, 1);
    let mut i = 0u64;
    loop {
        let path = Path::new(dir).join(format!("s{i}.tnsb"));
        let _ = TileStore::create_from_coo(&coo, [4, 3, 2], &path);
        i += 1;
    }
}

/// Entry point for `tenblock chaos --seeds N`.
pub fn run(seeds: u64) -> Result<String, String> {
    let matrix = (SITES.len() * ACTIONS.len() * TRIGGERS.len()) as u64;
    let base: PathBuf = std::env::temp_dir().join(format!("tenblock_chaos_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).map_err(|e| format!("chaos: mkdir: {e}"))?;
    let mut failures = Vec::new();
    for i in 0..seeds {
        if let Err(msg) = run_scenario(i, &base) {
            failures.push(msg);
        }
    }
    let kill_line = match run_kill9(&base) {
        Ok(line) => line,
        Err(msg) => {
            failures.push(format!("kill9: {msg}"));
            "kill -9: FAILED".to_string()
        }
    };
    let _ = std::fs::remove_dir_all(&base);
    let coverage = if seeds >= matrix {
        format!("full matrix coverage ({matrix} combinations)")
    } else {
        format!("partial matrix coverage ({seeds} of {matrix} combinations)")
    };
    let mut out = format!(
        "chaos: {} scenario(s) over {} sites x {} actions x {} triggers; {}\n{}",
        seeds,
        SITES.len(),
        ACTIONS.len(),
        TRIGGERS.len(),
        coverage,
        kill_line,
    );
    if failures.is_empty() {
        out.push_str("\nall scenarios passed: typed errors or bit-exact recovery, no panics, no hangs, no partial stores");
        Ok(out)
    } else {
        out.push_str(&format!("\n{} FAILURE(S):", failures.len()));
        for f in &failures {
            out.push_str(&format!("\n  {f}"));
        }
        Err(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_draw_is_deterministic_and_covers_all_cells() {
        let matrix = (SITES.len() * ACTIONS.len() * TRIGGERS.len()) as u64;
        let mut seen = std::collections::HashSet::new();
        for i in 0..matrix {
            let sc = scenario(i);
            seen.insert((sc.site.name(), sc.action_name, sc.trigger_name));
            // Same index, same scenario.
            assert_eq!(scenario(i).label(), sc.label());
        }
        assert_eq!(seen.len(), matrix as usize);
        // Wraps around after a full cycle (seed differs, cell repeats).
        assert_eq!(scenario(0).site.name(), scenario(matrix).site.name());
    }

    #[test]
    fn one_scenario_of_each_site_passes() {
        let base = std::env::temp_dir().join(format!("tenblock_chaos_unit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let per_site = (ACTIONS.len() * TRIGGERS.len()) as u64;
        for s in 0..SITES.len() as u64 {
            let i = s * per_site; // first cell of each site block
            run_scenario(i, &base).unwrap();
        }
        let _ = std::fs::remove_dir_all(&base);
    }
}
