//! # tenblock
//!
//! Facade crate for the `tenblock` workspace — a reproduction of
//! *Choi, Liu, Smith, Simon, "Blocking Optimization Techniques for Sparse
//! Tensor Computation", IPDPS 2018*.
//!
//! Re-exports every member crate under a stable path:
//!
//! * [`tensor`] — sparse tensor formats, generators, I/O ([`tenblock_tensor`])
//! * [`core`] — MTTKRP kernels with multi-dimensional / rank / register
//!   blocking ([`tenblock_core`])
//! * [`analysis`] — roofline model, cache simulator, pressure-point analysis
//!   ([`tenblock_analysis`])
//! * [`cpd`] — CP-ALS tensor decomposition ([`tenblock_cpd`])
//! * [`dist`] — simulated distributed MTTKRP with 3D/4D partitioning
//!   ([`tenblock_dist`])
//! * [`check`] — race detection, blocking-invariant oracles, workspace lint
//!   ([`tenblock_check`])
//! * [`fuzz`] — structure-aware differential fuzzer for the input boundary
//!   ([`tenblock_fuzz`])
//! * [`faults`] — deterministic fault-injection plane for every disk
//!   touchpoint ([`tenblock_faults`])
//! * [`serve`] — in-process decomposition service with spill tier and
//!   plan cache ([`tenblock_serve`])
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub mod chaos;
pub mod cli;

pub use tenblock_analysis as analysis;
pub use tenblock_check as check;
pub use tenblock_core as core;
pub use tenblock_cpd as cpd;
pub use tenblock_dist as dist;
pub use tenblock_faults as faults;
pub use tenblock_fuzz as fuzz;
pub use tenblock_serve as serve;
pub use tenblock_tensor as tensor;
